"""The optional compiled receive kernel (repro.simulation.jit).

numba is an optional dependency this container does not ship, so most
of these tests exercise the *fallback* matrix (mode validation, logged
reasons, state restoration) plus the kernel dispatch seam in
``CSRAdjacency.matvec`` using a plain-Python stand-in kernel; the
numba-only paths are gated behind ``skipif``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.counting.flooding import flood_times_batch
from repro.networks import csr as csr_mod
from repro.networks.generators.random_dynamic import RandomConnectedAdversary
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.simulation import jit


def _python_kernel(indptr, indices, x, out):
    """Reference implementation of the compiled kernel's contract."""
    for row in range(out.shape[0]):
        out[row] = x[indices[indptr[row] : indptr[row + 1]]].sum()


@pytest.fixture
def clean_kernel():
    previous = csr_mod.matvec_kernel()
    yield
    csr_mod.set_matvec_kernel(previous)


class TestModes:
    def test_resolve_validates(self):
        for mode in jit.JIT_MODES:
            assert jit.resolve_jit(mode) == mode
        with pytest.raises(ValueError, match="jit mode"):
            jit.resolve_jit("always")

    def test_off_never_installs(self, clean_kernel):
        backend = jit.enable("off")
        assert backend == "scipy"
        assert csr_mod.matvec_kernel() is None
        assert jit.jit_status() == ("scipy", "jit disabled (--jit off)")

    @pytest.mark.skipif(jit.HAVE_NUMBA, reason="needs numba absent")
    def test_absent_numba_falls_back_with_reason(self, clean_kernel, caplog):
        with caplog.at_level("DEBUG", logger="repro.simulation.jit"):
            assert jit.enable("auto") == "scipy"
        backend, reason = jit.jit_status()
        assert backend == "scipy"
        assert "numba not importable" in reason
        assert csr_mod.matvec_kernel() is None
        # 'on' is louder than 'auto': the user asked for the kernel.
        with caplog.at_level("WARNING", logger="repro.simulation.jit"):
            caplog.clear()
            assert jit.enable("on") == "scipy"
        assert any(
            "unavailable" in record.message for record in caplog.records
        )

    @pytest.mark.skipif(not jit.HAVE_NUMBA, reason="needs numba")
    def test_numba_installs_kernel(self, clean_kernel):
        assert jit.enable("auto") == "numba"
        assert csr_mod.matvec_kernel() is not None
        assert jit.jit_status() == ("numba", None)

    def test_context_restores_previous_state(self, clean_kernel):
        csr_mod.set_matvec_kernel(_python_kernel)
        status_before = jit.jit_status()
        with jit.jit_enabled("off") as backend:
            assert backend == "scipy"
            assert csr_mod.matvec_kernel() is None
        assert csr_mod.matvec_kernel() is _python_kernel
        assert jit.jit_status() == status_before

    def test_disable_clears(self, clean_kernel):
        csr_mod.set_matvec_kernel(_python_kernel)
        jit.disable()
        assert csr_mod.matvec_kernel() is None
        assert jit.jit_status() == ("scipy", "jit not enabled")


class TestKernelDispatch:
    """The csr.matvec seam, driven by the plain-Python kernel."""

    def _adjacency(self, n=12, seed=3):
        rng = np.random.default_rng(seed)
        from repro.networks.generators.random_dynamic import (
            random_connected_edges,
        )

        u, v = random_connected_edges(n, rng, extra_edge_p=0.3)
        return csr_mod.csr_from_edges(n, u, v)

    def test_kernel_matches_scipy(self, clean_kernel):
        adjacency = self._adjacency()
        x = np.arange(adjacency.n, dtype=np.float64)
        csr_mod.set_matvec_kernel(None)
        expected = adjacency.matvec(x)
        csr_mod.set_matvec_kernel(_python_kernel)
        assert np.array_equal(adjacency.matvec(x), expected)

    def test_kernel_counted(self, clean_kernel):
        adjacency = self._adjacency()
        x = np.ones(adjacency.n, dtype=np.float64)
        csr_mod.set_matvec_kernel(_python_kernel)
        registry = MetricsRegistry()
        with use_registry(registry):
            adjacency.matvec(x)
        assert registry.snapshot()["counters"]["adjacency.jit_matvecs"] == 1

    def test_non_float64_input_bypasses_kernel(self, clean_kernel):
        def exploding(indptr, indices, x, out):  # pragma: no cover
            raise AssertionError("kernel must not see non-float64 input")

        adjacency = self._adjacency()
        csr_mod.set_matvec_kernel(exploding)
        result = adjacency.matvec(np.ones(adjacency.n, dtype=np.int64))
        assert result.sum() == 2 * adjacency.edges

    def test_flood_identical_with_kernel(self, clean_kernel):
        jobs = [
            (
                RandomConnectedAdversary(
                    n, seed=seed, extra_edge_p=0.1
                ).as_dynamic_graph(),
                0,
            )
            for seed, n in enumerate((6, 9, 5), start=3)
        ]

        def run():
            return flood_times_batch(
                [
                    (
                        RandomConnectedAdversary(
                            job[0].n, seed=seed, extra_edge_p=0.1
                        ).as_dynamic_graph(),
                        0,
                    )
                    for seed, job in enumerate(jobs, start=3)
                ],
                max_rounds=64,
                max_lane_nodes=7,
            )

        csr_mod.set_matvec_kernel(None)
        expected = run()
        csr_mod.set_matvec_kernel(_python_kernel)
        assert run() == expected
