"""Tests for simulation traces."""

from __future__ import annotations

import networkx as nx

from repro.simulation.trace import RoundRecord, SimulationTrace, TraceLevel


class TestTraceLevel:
    def test_ordering(self):
        assert TraceLevel.NONE < TraceLevel.TOPOLOGY < TraceLevel.FULL


class TestRoundRecord:
    def test_repr_with_graph(self):
        record = RoundRecord(
            round_no=3,
            graph=nx.path_graph(3),
            messages_sent=2,
            messages_delivered=4,
        )
        text = repr(record)
        assert "round=3" in text
        assert "edges=2" in text
        assert "delivered=4" in text

    def test_repr_without_graph(self):
        assert "edges=?" in repr(RoundRecord(round_no=0))


class TestSimulationTrace:
    def _trace(self):
        trace = SimulationTrace(level=TraceLevel.TOPOLOGY)
        for round_no in range(3):
            trace.append(
                RoundRecord(
                    round_no=round_no,
                    graph=nx.path_graph(2),
                    messages_sent=1,
                    messages_delivered=round_no,
                )
            )
        return trace

    def test_length_and_indexing(self):
        trace = self._trace()
        assert len(trace) == 3
        assert trace.rounds == 3
        assert trace[1].round_no == 1

    def test_iteration(self):
        assert [record.round_no for record in self._trace()] == [0, 1, 2]

    def test_total_messages(self):
        assert self._trace().total_messages == 0 + 1 + 2

    def test_graphs(self):
        graphs = self._trace().graphs()
        assert len(graphs) == 3
        assert all(graph.number_of_edges() == 1 for graph in graphs)

    def test_empty_trace(self):
        trace = SimulationTrace()
        assert trace.rounds == 0
        assert trace.total_messages == 0
        assert trace.graphs() == []
