"""Streaming lane chunks: chunked == monolithic, bounded memory.

The contract under test (``docs/PERFORMANCE.md``): running a fast-batch
with ``max_lane_nodes`` set must be *indistinguishable* from the
monolithic single-stack run -- same results, same ``engine.*``
counters, same telemetry trajectory -- except in peak memory, which is
bounded by the chunk budget instead of the grid.
"""

from __future__ import annotations

import io
import json
import tracemalloc

import numpy as np
import pytest

from repro.core.counting.flooding import flood_times_batch
from repro.core.counting.gossip import gossip_size_estimates_batch
from repro.core.counting.star import VectorizedStar
from repro.core.counting.token_ids import count_with_ids_batch
from repro.core.dissemination import disseminate_by_flooding_batch
from repro.networks.dynamic_graph import DynamicGraph
from repro.networks.generators import star_network
from repro.networks.generators.random_dynamic import (
    RandomConnectedAdversary,
    random_connected_graph,
)
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.obs.spans import JsonlSink, add_sink, remove_sink
from repro.obs.telemetry import telemetry_enabled
from repro.simulation.engine import EngineConfig
from repro.simulation.errors import TerminationError
from repro.simulation.fast import (
    FastEngine,
    FastLane,
    LaneLayout,
    VectorizedProtocol,
    _LaneBlock,
    active_lane_budget,
    lane_budget_enabled,
    partition_lanes,
)

#: Counters a chunked run must report byte-identically to monolithic.
COUNTERS = (
    "engine.runs",
    "engine.rounds",
    "engine.graphs",
    "engine.messages_sent",
    "engine.messages_delivered",
    "engine.fast.batches",
    "engine.fast.fused_rounds",
)

#: Budgets exercising 1-lane chunks, mid splits, and the monolithic
#: fast path (None) as the reference leg.
BUDGETS = (1, 7, None)

SIZES = (4, 7, 3, 6)


def _static(n: int, seed: int) -> DynamicGraph:
    graph = random_connected_graph(
        n, np.random.default_rng([seed, 0]), extra_edge_p=0.2
    )
    return DynamicGraph.from_graphs([graph])


def _dynamic(n: int, seed: int) -> DynamicGraph:
    return RandomConnectedAdversary(
        n, seed=seed, extra_edge_p=0.1
    ).as_dynamic_graph()


FAMILIES = {"static": _static, "dynamic-csr": _dynamic}


def _run_instrumented(invoke, budget, *, every=1):
    """Run ``invoke(budget)`` capturing results, counters, telemetry."""
    buffer = io.StringIO()
    sink = add_sink(JsonlSink(buffer))
    registry = MetricsRegistry()
    try:
        with use_registry(registry), telemetry_enabled(every=every):
            value = invoke(budget)
    finally:
        remove_sink(sink)
    snapshot = registry.snapshot()["counters"]
    counters = {name: snapshot.get(name, 0) for name in COUNTERS}
    envelope = ("ts", "kind", "pid", "trace_id", "seq")
    events = [
        {key: event[key] for key in event if key not in envelope}
        for event in map(json.loads, buffer.getvalue().splitlines())
        if event.get("kind") == "telemetry"
    ]
    return value, counters, events


def _assert_equivalent(invoke, *, every=1):
    reference = _run_instrumented(invoke, None, every=every)
    for budget in BUDGETS[:-1]:
        chunked = _run_instrumented(invoke, budget, every=every)
        assert chunked[0] == reference[0], f"results diverged at {budget=}"
        assert chunked[1] == reference[1], f"counters diverged at {budget=}"
        assert chunked[2] == reference[2], f"telemetry diverged at {budget=}"


class TestPartitionLanes:
    def test_no_budget_is_one_chunk(self):
        assert partition_lanes([3, 4, 5], None) == [(0, 3)]

    def test_greedy_packing(self):
        assert partition_lanes([3, 3, 3, 3], 6) == [(0, 2), (2, 4)]
        assert partition_lanes([3, 3, 3], 7) == [(0, 2), (2, 3)]
        assert partition_lanes([1, 1, 1], 1) == [(0, 1), (1, 2), (2, 3)]

    def test_oversized_lane_gets_own_chunk(self):
        assert partition_lanes([10, 2, 2], 4) == [(0, 1), (1, 3)]
        assert partition_lanes([2, 10, 2], 4) == [(0, 1), (1, 2), (2, 3)]

    def test_exhaustive_and_order_preserving(self):
        rng = np.random.default_rng(7)
        for _ in range(50):
            sizes = [int(s) for s in rng.integers(1, 9, size=rng.integers(1, 12))]
            budget = int(rng.integers(1, 15))
            chunks = partition_lanes(sizes, budget)
            # Contiguous cover of [0, len(sizes)).
            assert chunks[0][0] == 0 and chunks[-1][1] == len(sizes)
            assert all(
                prev[1] == cur[0] for prev, cur in zip(chunks, chunks[1:])
            )
            for start, stop in chunks:
                load = sum(sizes[start:stop])
                assert load <= budget or stop - start == 1

    def test_invalid_budget_rejected(self):
        with pytest.raises(ValueError, match="max_lane_nodes"):
            partition_lanes([1, 2], 0)


class TestChunkedEquivalence:
    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_flood(self, family):
        make = FAMILIES[family]

        def invoke(budget):
            jobs = [
                (make(n, seed), seed % n)
                for seed, n in enumerate(SIZES, start=3)
            ]
            return flood_times_batch(
                jobs, max_rounds=64, max_lane_nodes=budget
            )

        _assert_equivalent(invoke)

    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_gossip(self, family):
        make = FAMILIES[family]

        def invoke(budget):
            specs = [
                (make(n, seed), n) for seed, n in enumerate(SIZES, start=5)
            ]
            return gossip_size_estimates_batch(
                specs, 9, max_lane_nodes=budget
            )

        _assert_equivalent(invoke)

    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_token_ids(self, family):
        make = FAMILIES[family]

        def invoke(budget):
            jobs = [
                (make(n, seed), n + seed % 3)
                for seed, n in enumerate(SIZES, start=7)
            ]
            return [
                (outcome.count, outcome.output_round, outcome.rounds)
                for outcome in count_with_ids_batch(
                    jobs, max_lane_nodes=budget
                )
            ]

        _assert_equivalent(invoke)

    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_dissemination(self, family):
        make = FAMILIES[family]

        def invoke(budget):
            jobs = [
                (make(n, seed), {0: 0, n - 1: 1, n // 2: 0})
                for seed, n in enumerate(SIZES, start=11)
            ]
            return [
                (result.rounds, result.tokens, result.messages)
                for result in disseminate_by_flooding_batch(
                    jobs, max_rounds=64, max_lane_nodes=budget
                )
            ]

        _assert_equivalent(invoke)

    def test_star(self):
        def invoke(budget):
            lanes = [
                FastLane(star_network(n), n, leader=0) for n in SIZES
            ]
            engine = FastEngine(
                VectorizedStar(),
                lanes,
                config=EngineConfig(max_rounds=4),
                max_lane_nodes=budget,
            )
            return [
                (result.leader_output, result.rounds)
                for result in engine.run()
            ]

        _assert_equivalent(invoke)

    def test_sampled_telemetry_matches(self):
        # Sub-sampled trajectories (every=3) must also merge losslessly:
        # chunk-extension rounds are gated by the same sampler.
        def invoke(budget):
            jobs = [
                (_dynamic(n, seed), 0)
                for seed, n in enumerate(SIZES, start=13)
            ]
            return flood_times_batch(
                jobs, max_rounds=64, max_lane_nodes=budget
            )

        _assert_equivalent(invoke, every=3)

    def test_termination_error_identical(self):
        def invoke(budget):
            jobs = [(_static(n, seed), 0) for seed, n in enumerate((9, 8))]
            with pytest.raises(TerminationError) as excinfo:
                flood_times_batch(jobs, max_rounds=1, max_lane_nodes=budget)
            return str(excinfo.value)

        message, counters, _ = _run_instrumented(invoke, None)
        chunked_message, chunked_counters, _ = _run_instrumented(invoke, 8)
        assert chunked_message == message
        assert "stop criterion 'all' not met within 1 rounds" in message
        assert chunked_counters == counters


class _NoSubsetFlood(VectorizedProtocol):
    """A minimal protocol without chunking support."""

    def allocate(self, layouts):
        self._layouts = list(layouts)
        self.done = np.zeros(layouts[-1].stop, dtype=bool)

    def step(self, round_no, adjacency, active):
        self.done[:] = True
        sending = np.ones(self.done.shape[0], dtype=bool)
        return sending, adjacency.degrees

    def output_mask(self):
        return self.done

    def outputs_for(self, layout: LaneLayout):
        return {index: True for index in range(layout.n)}


class TestNonSubsettableProtocol:
    def _lanes(self):
        return [FastLane(_static(n, n), n, leader=0) for n in (3, 4)]

    def test_multi_chunk_raises_actionable_type_error(self):
        engine = FastEngine(
            _NoSubsetFlood(),
            self._lanes(),
            config=EngineConfig(max_rounds=4),
            max_lane_nodes=4,
        )
        with pytest.raises(TypeError, match="_NoSubsetFlood"):
            engine.run()

    def test_single_chunk_needs_no_subset(self):
        engine = FastEngine(
            _NoSubsetFlood(),
            self._lanes(),
            config=EngineConfig(max_rounds=4),
        )
        assert len(engine.run()) == 2


class TestAmbientBudget:
    def test_context_sets_and_restores(self):
        assert active_lane_budget() is None
        with lane_budget_enabled(5) as budget:
            assert budget == 5
            assert active_lane_budget() == 5
            with lane_budget_enabled(2):
                assert active_lane_budget() == 2
            assert active_lane_budget() == 5
        assert active_lane_budget() is None

    def test_engine_adopts_ambient_budget(self):
        lanes = [FastLane(star_network(3), 3, leader=0) for _ in range(4)]
        with lane_budget_enabled(3):
            engine = FastEngine(
                VectorizedStar(), lanes, config=EngineConfig(max_rounds=4)
            )
        assert engine.max_lane_nodes == 3
        assert len(engine._chunks) == 4

    def test_explicit_budget_wins_over_ambient(self):
        lanes = [FastLane(star_network(3), 3, leader=0) for _ in range(4)]
        with lane_budget_enabled(3):
            engine = FastEngine(
                VectorizedStar(),
                lanes,
                config=EngineConfig(max_rounds=4),
                max_lane_nodes=12,
            )
        assert engine.max_lane_nodes == 12
        assert len(engine._chunks) == 1

    def test_invalid_budget_rejected(self):
        with pytest.raises(ValueError, match="max_lane_nodes"):
            with lane_budget_enabled(0):
                pass  # pragma: no cover


class TestMemoryBound:
    def _flood_peak(self, lanes: int, n: int, budget: int | None) -> int:
        jobs = [(_dynamic(n, seed), 0) for seed in range(lanes)]
        tracemalloc.start()
        flood_times_batch(jobs, max_rounds=10_000, max_lane_nodes=budget)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        return peak

    def test_chunked_peak_below_monolithic(self):
        # A grid whose monolithic stack (4 x 2048 nodes) far exceeds the
        # chunk budget must never allocate it: the chunked peak tracks
        # the budget, not the grid.
        monolithic = self._flood_peak(4, 2048, None)
        chunked = self._flood_peak(4, 2048, 2048)
        assert chunked < 0.75 * monolithic, (
            f"chunked peak {chunked} not meaningfully below monolithic "
            f"{monolithic}"
        )

    def test_peak_tracks_budget_not_grid(self):
        # Doubling the grid under a fixed budget must not double the
        # peak: chunk state is released before the next chunk allocates.
        small_grid = self._flood_peak(4, 1024, 1024)
        big_grid = self._flood_peak(8, 1024, 1024)
        assert big_grid < 1.5 * small_grid, (
            f"peak grew with the grid ({small_grid} -> {big_grid}) "
            f"despite a fixed chunk budget"
        )


class TestDtypePolicy:
    """Overflow promotion at the int32 boundary (ISSUE 8 satellite)."""

    def _engine(self, n: int) -> FastEngine:
        # Construction alone derives the dtypes; nothing runs, so a
        # 46k-node star lane costs only the networkx graph build.
        return FastEngine(
            VectorizedStar(), [FastLane(star_network(n), n, leader=0)]
        )

    def test_accumulator_int32_below_square_boundary(self):
        # 46340**2 = 2,147,395,600 < 2**31: delivered-count math still
        # fits int32.
        engine = self._engine(46340)
        assert engine._index_dtype == np.int32
        assert engine._acc_dtype == np.int32

    def test_accumulator_promotes_past_square_boundary(self):
        # 46341**2 crosses 2**31: the delivered-count accumulator must
        # promote to int64 while plain node indexing stays int32.
        engine = self._engine(46341)
        assert engine._index_dtype == np.int32
        assert engine._acc_dtype == np.int64

    def test_block_rederives_chunk_local_dtypes(self):
        # A chunk re-derives dtypes from its own (smaller) totals, so a
        # block never inherits a promotion the chunk does not need.
        block = _LaneBlock(
            [FastLane(_static(4, seed), 4) for seed in range(3)],
            EngineConfig(),
        )
        assert block._offsets.dtype == np.int32
        assert block._count_dtype == np.int32
        assert block._acc_dtype == np.int32
