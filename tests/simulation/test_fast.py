"""Tests for the vectorized fast backend (CSR lowering + FastEngine)."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.networks.csr import (
    AdjacencyCache,
    StackCache,
    lower_graph,
    stack_adjacencies,
)
from repro.networks.dynamic_graph import DynamicGraph
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.simulation.engine import EngineConfig
from repro.simulation.errors import TerminationError, TopologyError
from repro.simulation.fast import (
    FastEngine,
    FastLane,
    VectorizedProtocol,
    resolve_backend,
)
from repro.simulation.trace import TraceLevel


def dyn(graphs, **kwargs):
    return DynamicGraph.from_graphs(graphs, **kwargs)


class Flood(VectorizedProtocol):
    """Minimal flooding protocol used to exercise the engine."""

    def __init__(self, sources):
        self.sources = sources

    def allocate(self, layouts):
        self.layouts = list(layouts)
        total = layouts[-1].stop
        self.informed = np.zeros(total, dtype=bool)
        for layout, source in zip(layouts, self.sources):
            self.informed[layout.offset + source] = True

    def step(self, round_no, adjacency, active):
        sending = self.informed.copy()
        delivered = adjacency.matvec(sending.astype(np.float64)).astype(
            np.int64
        )
        self.informed |= delivered > 0
        return sending, delivered

    def output_mask(self):
        return self.informed

    def outputs_for(self, layout):
        return {
            index: True
            for index in range(layout.n)
            if self.informed[layout.offset + index]
        }


class TestLowerGraph:
    def test_basic_lowering(self):
        adjacency = lower_graph(nx.path_graph(4))
        assert adjacency.n == 4
        assert adjacency.edges == 3
        assert adjacency.connected is True
        assert list(adjacency.degrees) == [1, 2, 2, 1]

    def test_matvec_is_neighbour_sum(self):
        adjacency = lower_graph(nx.star_graph(3))
        x = np.array([10.0, 1.0, 2.0, 3.0])
        assert list(adjacency.matvec(x)) == [6.0, 10.0, 10.0, 10.0]

    def test_disconnected_recorded(self):
        graph = nx.Graph()
        graph.add_nodes_from(range(4))
        graph.add_edge(0, 1)
        assert lower_graph(graph).connected is False

    def test_singleton_connected(self):
        graph = nx.Graph()
        graph.add_node(0)
        assert lower_graph(graph).connected is True

    def test_wrong_node_set_rejected(self):
        graph = nx.relabel_nodes(nx.path_graph(3), {0: 5, 1: 6, 2: 7})
        with pytest.raises(TopologyError, match="do not match"):
            lower_graph(graph)

    def test_node_count_mismatch_rejected(self):
        with pytest.raises(TopologyError):
            lower_graph(nx.path_graph(3), n=4)

    def test_self_loop_rejected(self):
        graph = nx.path_graph(3)
        graph.add_edge(1, 1)
        with pytest.raises(TopologyError, match="self-loop"):
            lower_graph(graph)


class TestCaches:
    def test_adjacency_cache_hit_by_identity(self):
        cache = AdjacencyCache()
        graph = nx.path_graph(3)
        assert cache.lower(graph) is cache.lower(graph)
        assert len(cache) == 1

    def test_adjacency_cache_distinct_objects(self):
        cache = AdjacencyCache()
        assert cache.lower(nx.path_graph(3)) is not cache.lower(
            nx.path_graph(3)
        )

    def test_stack_single_part_passthrough(self):
        part = lower_graph(nx.path_graph(3))
        assert stack_adjacencies([part]) is part

    def test_stack_block_diagonal(self):
        a = lower_graph(nx.path_graph(2))
        b = lower_graph(nx.path_graph(3))
        stacked = stack_adjacencies([a, b])
        assert stacked.n == 5
        assert stacked.edges == 3
        assert stacked.connected is None
        # No cross-lane edges: flooding lane a never reaches lane b.
        x = np.array([1.0, 0.0, 0.0, 0.0, 0.0])
        assert list(stacked.matvec(x))[2:] == [0.0, 0.0, 0.0]

    def test_stack_cache_hit(self):
        cache = StackCache()
        parts = [lower_graph(nx.path_graph(2)), lower_graph(nx.path_graph(3))]
        assert cache.stack(parts) is cache.stack(parts)

    def test_empty_stack_rejected(self):
        with pytest.raises(ValueError):
            stack_adjacencies([])

    def test_adjacency_cache_is_bounded(self):
        registry = MetricsRegistry()
        cache = AdjacencyCache(maxsize=3)
        graphs = [nx.path_graph(3) for _ in range(10)]
        with use_registry(registry):
            for graph in graphs:
                cache.lower(graph)
        assert len(cache) == 3
        counters = registry.snapshot()["counters"]
        assert counters["adjacency.cache_evictions"] == 7

    def test_adjacency_cache_lru_keeps_recent(self):
        cache = AdjacencyCache(maxsize=2)
        old, recent = nx.path_graph(3), nx.path_graph(4)
        first = cache.lower(old)
        second = cache.lower(recent)
        cache.lower(recent)  # refresh: recent is now most recently used
        cache.lower(nx.path_graph(5))  # evicts `old`, not `recent`
        assert cache.lower(recent) is second
        assert cache.lower(old) is not first

    def test_adjacency_cache_clear(self):
        cache = AdjacencyCache()
        graph = nx.path_graph(3)
        before = cache.lower(graph)
        cache.clear()
        assert len(cache) == 0
        assert cache.lower(graph) is not before

    def test_stack_cache_is_bounded(self):
        registry = MetricsRegistry()
        cache = StackCache(maxsize=2)
        parts_list = [
            [lower_graph(nx.path_graph(2)), lower_graph(nx.path_graph(3))]
            for _ in range(5)
        ]
        with use_registry(registry):
            stacks = [cache.stack(parts) for parts in parts_list]
        assert len(cache) == 2
        counters = registry.snapshot()["counters"]
        assert counters["adjacency.stack_evictions"] == 3
        # The two most recent entries are still identity-served.
        assert cache.stack(parts_list[-1]) is stacks[-1]
        assert cache.stack(parts_list[-2]) is stacks[-2]

    def test_stack_cache_clear(self):
        cache = StackCache()
        parts = [lower_graph(nx.path_graph(2)), lower_graph(nx.path_graph(3))]
        before = cache.stack(parts)
        cache.clear()
        assert len(cache) == 0
        assert cache.stack(parts) is not before

    def test_stack_cache_changed_length_is_a_miss(self):
        # A key built from fewer lanes must never be confused with a
        # stale longer entry (id-reuse collisions included).
        cache = StackCache()
        a = lower_graph(nx.path_graph(2))
        b = lower_graph(nx.path_graph(3))
        both = cache.stack([a, b])
        only_a = cache.stack([a])
        assert only_a is not both
        assert only_a.n == 2


class TestResolveBackend:
    def test_accepts_known(self):
        assert resolve_backend("object") == "object"
        assert resolve_backend("fast") == "fast"

    def test_rejects_unknown(self):
        with pytest.raises(ValueError, match="backend"):
            resolve_backend("gpu")


class TestFastEngine:
    def test_single_lane_flood_rounds(self):
        engine = FastEngine(
            Flood([0]),
            [FastLane(dyn([nx.path_graph(4)]), 4, leader=None)],
            config=EngineConfig(stop_when="all", max_rounds=10),
        )
        result = engine.run()[0]
        assert result.rounds == 3
        assert result.terminated is True
        assert result.outputs == {0: True, 1: True, 2: True, 3: True}

    def test_batch_lanes_stop_independently(self):
        lanes = [
            FastLane(dyn([nx.path_graph(n)]), n, leader=None)
            for n in (2, 4, 6)
        ]
        engine = FastEngine(
            Flood([0, 0, 0]),
            lanes,
            config=EngineConfig(stop_when="all", max_rounds=10),
        )
        assert [r.rounds for r in engine.run()] == [1, 3, 5]

    def test_batch_equals_single_runs(self):
        def result_for(n):
            engine = FastEngine(
                Flood([0]),
                [FastLane(dyn([nx.path_graph(n)]), n, leader=None)],
                config=EngineConfig(stop_when="all", max_rounds=10),
            )
            return engine.run()[0]

        singles = [result_for(n) for n in (3, 5)]
        batch = FastEngine(
            Flood([0, 0]),
            [
                FastLane(dyn([nx.path_graph(3)]), 3, leader=None),
                FastLane(dyn([nx.path_graph(5)]), 5, leader=None),
            ],
            config=EngineConfig(stop_when="all", max_rounds=10),
        ).run()
        for single, lane in zip(singles, batch):
            assert single.rounds == lane.rounds
            assert single.outputs == lane.outputs

    def test_budget_stop_runs_exact_rounds(self):
        engine = FastEngine(
            Flood([0]),
            [FastLane(dyn([nx.path_graph(3)]), 3, leader=None)],
            config=EngineConfig(stop_when="budget", max_rounds=7),
        )
        assert engine.run()[0].rounds == 7

    def test_termination_error_on_budget_exhaustion(self):
        # Disconnected pair of components can never fully flood.
        graph = nx.Graph()
        graph.add_nodes_from(range(4))
        graph.add_edge(0, 1)
        graph.add_edge(2, 3)
        engine = FastEngine(
            Flood([0]),
            [FastLane(dyn([graph]), 4, leader=None)],
            config=EngineConfig(
                stop_when="all", max_rounds=5, require_connected=False
            ),
        )
        with pytest.raises(TerminationError, match="not met"):
            engine.run()

    def test_disconnected_graph_rejected(self):
        graph = nx.Graph()
        graph.add_nodes_from(range(4))
        graph.add_edge(0, 1)
        graph.add_edge(2, 3)
        engine = FastEngine(
            Flood([0]),
            [FastLane(dyn([graph]), 4, leader=None)],
            config=EngineConfig(stop_when="all", max_rounds=5),
        )
        with pytest.raises(TopologyError, match="disconnected"):
            engine.run()

    def test_wrong_lane_size_rejected(self):
        engine = FastEngine(
            Flood([0]),
            [FastLane(dyn([nx.path_graph(4)]), 3, leader=None)],
            config=EngineConfig(stop_when="all", max_rounds=5),
        )
        with pytest.raises(TopologyError):
            engine.run()

    def test_trace_level_rejected(self):
        with pytest.raises(ValueError, match="trace"):
            FastEngine(
                Flood([0]),
                [FastLane(dyn([nx.path_graph(3)]), 3, leader=None)],
                config=EngineConfig(trace_level=TraceLevel.TOPOLOGY),
            )

    def test_leader_stop_requires_leader(self):
        with pytest.raises(ValueError, match="leader"):
            FastEngine(
                Flood([0]),
                [FastLane(dyn([nx.path_graph(3)]), 3, leader=None)],
                config=EngineConfig(stop_when="leader"),
            )

    def test_empty_lanes_rejected(self):
        with pytest.raises(ValueError, match="lane"):
            FastEngine(Flood([]), [])

    def test_callable_topology_supported(self):
        engine = FastEngine(
            Flood([0]),
            [FastLane(lambda r: nx.path_graph(3), 3, leader=None)],
            config=EngineConfig(stop_when="all", max_rounds=10),
        )
        assert engine.run()[0].rounds == 2

    def test_round_hook_called_per_round(self):
        seen = []
        engine = FastEngine(
            Flood([0]),
            [FastLane(dyn([nx.path_graph(4)]), 4, leader=None)],
            config=EngineConfig(stop_when="all", max_rounds=10),
            round_hook=seen.append,
        )
        engine.run()
        assert seen == [0, 1, 2]

    def test_counters_match_object_engine_semantics(self):
        # 1 run, 3 rounds, 3 graphs; sending set sizes 1, 2, 3 over the
        # path-4 flood; deliveries: round 0: node1 gets 1; round 1:
        # nodes 0 and 2 get 1 each... identical to the object engine on
        # the same workload (differential-tested in test_backends.py,
        # asserted absolutely here).
        registry = MetricsRegistry()
        with use_registry(registry):
            FastEngine(
                Flood([0]),
                [FastLane(dyn([nx.path_graph(4)]), 4, leader=None)],
                config=EngineConfig(stop_when="all", max_rounds=10),
            ).run()
        counters = registry.snapshot()["counters"]
        assert counters["engine.runs"] == 1
        assert counters["engine.rounds"] == 3
        assert counters["engine.graphs"] == 3
        assert counters["engine.messages_sent"] == 1 + 2 + 3

    def test_stopped_lane_excluded_from_counters(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            FastEngine(
                Flood([0, 0]),
                [
                    FastLane(dyn([nx.path_graph(2)]), 2, leader=None),
                    FastLane(dyn([nx.path_graph(4)]), 4, leader=None),
                ],
                config=EngineConfig(stop_when="all", max_rounds=10),
            ).run()
        counters = registry.snapshot()["counters"]
        assert counters["engine.runs"] == 2
        # Lane 0 stops after round 1; lane 1 needs 3 rounds.
        assert counters["engine.rounds"] == 1 + 3
        assert counters["engine.graphs"] == 1 + 3

    def test_static_topology_lowered_once(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            FastEngine(
                Flood([0]),
                [FastLane(dyn([nx.path_graph(6)]), 6, leader=None)],
                config=EngineConfig(stop_when="all", max_rounds=10),
            ).run()
        counters = registry.snapshot()["counters"]
        assert counters["adjacency.builds"] == 1
        assert counters["adjacency.cache_hits"] >= 1

    def test_bad_leader_index_rejected(self):
        with pytest.raises(ValueError, match="leader"):
            FastEngine(
                Flood([0]),
                [FastLane(dyn([nx.path_graph(3)]), 3, leader=5)],
            )
