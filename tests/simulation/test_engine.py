"""Tests for the synchronous engine."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.simulation.engine import (
    DegreeOracleEngine,
    EngineConfig,
    SynchronousEngine,
    as_topology_provider,
)
from repro.simulation.errors import (
    ProtocolViolationError,
    TerminationError,
    TopologyError,
)
from repro.simulation.messages import Inbox
from repro.simulation.node import Process
from repro.simulation.trace import TraceLevel


class EchoProcess(Process):
    """Broadcasts a constant; records everything received."""

    def __init__(self, tag="echo"):
        self.tag = tag
        self.received: list[tuple[int, Inbox]] = []

    def compose(self, round_no):
        return self.tag

    def deliver(self, round_no, inbox):
        self.received.append((round_no, inbox))


class CountdownProcess(Process):
    """Outputs after a fixed number of rounds."""

    def __init__(self, rounds):
        self.rounds_left = rounds

    def compose(self, round_no):
        return "tick"

    def deliver(self, round_no, inbox):
        self.rounds_left -= 1
        if self.rounds_left <= 0:
            self._output = "done"


def ring(n):
    return lambda round_no: nx.cycle_graph(n)


class TestEngineBasics:
    def test_messages_flow_between_neighbours(self):
        processes = [EchoProcess(f"p{i}") for i in range(3)]
        engine = SynchronousEngine(
            processes,
            ring(3),
            leader=None,
            config=EngineConfig(max_rounds=1, stop_when="budget"),
        )
        engine.run()
        # In a triangle everyone hears the other two.
        for i, process in enumerate(processes):
            (round_no, inbox), = process.received
            assert round_no == 0
            expected = {f"p{j}" for j in range(3) if j != i}
            assert set(inbox) == expected

    def test_anonymity_no_sender_information(self):
        processes = [EchoProcess("same") for _ in range(4)]
        engine = SynchronousEngine(
            processes,
            ring(4),
            leader=None,
            config=EngineConfig(max_rounds=1, stop_when="budget"),
        )
        engine.run()
        # Both neighbours sent identical payloads; the inbox holds two
        # indistinguishable copies.
        inbox = processes[0].received[0][1]
        assert inbox.counts() == {"same": 2}

    def test_none_payload_is_silence(self):
        class Silent(Process):
            def compose(self, round_no):
                return None

            def deliver(self, round_no, inbox):
                self.inbox = inbox

        processes = [Silent(), Silent()]
        engine = SynchronousEngine(
            processes,
            lambda r: nx.path_graph(2),
            leader=None,
            config=EngineConfig(max_rounds=1, stop_when="budget"),
        )
        engine.run()
        assert len(processes[0].inbox) == 0

    def test_stop_when_leader(self):
        processes = [CountdownProcess(3), CountdownProcess(100)]
        engine = SynchronousEngine(
            processes, lambda r: nx.path_graph(2), leader=0
        )
        result = engine.run()
        assert result.rounds == 3
        assert result.leader_output == "done"
        assert result.terminated

    def test_stop_when_all(self):
        processes = [CountdownProcess(2), CountdownProcess(5)]
        engine = SynchronousEngine(
            processes,
            lambda r: nx.path_graph(2),
            leader=None,
            config=EngineConfig(stop_when="all"),
        )
        assert engine.run().rounds == 5

    def test_stop_when_any(self):
        processes = [CountdownProcess(2), CountdownProcess(5)]
        engine = SynchronousEngine(
            processes,
            lambda r: nx.path_graph(2),
            leader=None,
            config=EngineConfig(stop_when="any"),
        )
        assert engine.run().rounds == 2

    def test_stop_when_budget_runs_exact_rounds(self):
        processes = [CountdownProcess(1), CountdownProcess(1)]
        engine = SynchronousEngine(
            processes,
            lambda r: nx.path_graph(2),
            leader=None,
            config=EngineConfig(max_rounds=7, stop_when="budget"),
        )
        result = engine.run()
        assert result.rounds == 7
        assert result.terminated

    def test_budget_exhaustion_raises(self):
        processes = [CountdownProcess(100), CountdownProcess(100)]
        engine = SynchronousEngine(
            processes,
            lambda r: nx.path_graph(2),
            leader=0,
            config=EngineConfig(max_rounds=3),
        )
        with pytest.raises(TerminationError):
            engine.run()

    def test_outputs_collected(self):
        processes = [CountdownProcess(1), CountdownProcess(2)]
        engine = SynchronousEngine(
            processes,
            lambda r: nx.path_graph(2),
            leader=None,
            config=EngineConfig(stop_when="all"),
        )
        result = engine.run()
        assert result.outputs == {0: "done", 1: "done"}


class TestEngineValidation:
    def test_rejects_empty_process_list(self):
        with pytest.raises(ValueError, match="at least one process"):
            SynchronousEngine([], ring(0))

    def test_rejects_bad_leader_index(self):
        with pytest.raises(ValueError, match="leader index"):
            SynchronousEngine([EchoProcess()], ring(1), leader=5)

    def test_leader_stop_requires_leader(self):
        with pytest.raises(ValueError, match="requires a leader"):
            SynchronousEngine([EchoProcess()], ring(1), leader=None)

    def test_wrong_node_set_raises(self):
        engine = SynchronousEngine(
            [EchoProcess(), EchoProcess()],
            lambda r: nx.path_graph(3),
            leader=None,
            config=EngineConfig(stop_when="budget", max_rounds=1),
        )
        with pytest.raises(TopologyError, match="do not match"):
            engine.run()

    def test_disconnected_graph_raises(self):
        graph = nx.Graph()
        graph.add_nodes_from(range(2))
        engine = SynchronousEngine(
            [EchoProcess(), EchoProcess()],
            lambda r: graph,
            leader=None,
            config=EngineConfig(stop_when="budget", max_rounds=1),
        )
        with pytest.raises(TopologyError, match="disconnected"):
            engine.run()

    def test_self_loop_raises(self):
        """Regression: a self-loop delivered a node its own broadcast."""
        graph = nx.path_graph(2)
        graph.add_edge(1, 1)
        engine = SynchronousEngine(
            [EchoProcess(), EchoProcess()],
            lambda r: graph,
            leader=None,
            config=EngineConfig(stop_when="budget", max_rounds=1),
        )
        with pytest.raises(TopologyError, match="self-loop"):
            engine.run()

    def test_self_loop_rejected_even_without_connectivity_check(self):
        graph = nx.path_graph(3)
        graph.add_edge(0, 0)
        engine = SynchronousEngine(
            [EchoProcess(), EchoProcess(), EchoProcess()],
            lambda r: graph,
            leader=None,
            config=EngineConfig(
                stop_when="budget", max_rounds=1, require_connected=False
            ),
        )
        with pytest.raises(TopologyError, match="self-loop"):
            engine.run()

    def test_no_self_delivery_on_clean_graph(self):
        processes = [EchoProcess(f"p{i}") for i in range(2)]
        engine = SynchronousEngine(
            processes,
            lambda r: nx.path_graph(2),
            leader=None,
            config=EngineConfig(stop_when="budget", max_rounds=1),
        )
        engine.run()
        for process in processes:
            _, inbox = process.received[0]
            assert process.tag not in inbox

    def test_disconnected_allowed_when_not_required(self):
        graph = nx.Graph()
        graph.add_nodes_from(range(2))
        engine = SynchronousEngine(
            [EchoProcess(), EchoProcess()],
            lambda r: graph,
            leader=None,
            config=EngineConfig(
                stop_when="budget", max_rounds=1, require_connected=False
            ),
        )
        assert engine.run().rounds == 1

    def test_unhashable_payload_raises_with_validation(self):
        class Bad(Process):
            def compose(self, round_no):
                return [1, 2]

            def deliver(self, round_no, inbox):
                pass

        engine = SynchronousEngine(
            [Bad(), Bad()],
            lambda r: nx.path_graph(2),
            leader=None,
            config=EngineConfig(
                stop_when="budget", max_rounds=1, validate_payloads=True
            ),
        )
        with pytest.raises(ProtocolViolationError, match="unhashable"):
            engine.run()

    def test_payload_validation_off_by_default(self):
        """The hashability check is a debug flag, off on the hot path."""

        class Bad(Process):
            def compose(self, round_no):
                return [1, 2]

            def deliver(self, round_no, inbox):
                self.inbox = inbox

        engine = SynchronousEngine(
            [Bad(), Bad()],
            lambda r: nx.path_graph(2),
            leader=None,
            config=EngineConfig(stop_when="budget", max_rounds=1),
        )
        assert engine.run().rounds == 1

    def test_graph_validation_memoized_per_object(self):
        """A held graph object is validated once, not once per round."""
        graph = nx.path_graph(3)
        calls = 0
        real_is_connected = nx.is_connected

        def counting_is_connected(g):
            nonlocal calls
            calls += 1
            return real_is_connected(g)

        engine = SynchronousEngine(
            [EchoProcess(), EchoProcess(), EchoProcess()],
            lambda r: graph,
            leader=None,
            config=EngineConfig(stop_when="budget", max_rounds=5),
        )
        import repro.simulation.engine as engine_mod

        original = engine_mod.nx.is_connected
        engine_mod.nx.is_connected = counting_is_connected
        try:
            engine.run()
        finally:
            engine_mod.nx.is_connected = original
        assert calls == 1

    def test_fresh_graphs_each_round_all_validated(self):
        """Distinct graph objects are each validated (no false hits)."""
        engine = SynchronousEngine(
            [EchoProcess(), EchoProcess()],
            lambda r: nx.path_graph(2) if r % 2 == 0 else nx.Graph([(0, 1)]),
            leader=None,
            config=EngineConfig(stop_when="budget", max_rounds=4),
        )
        assert engine.run().rounds == 4

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            EngineConfig(max_rounds=0)
        with pytest.raises(ValueError):
            EngineConfig(stop_when="never")


class TestTopologyProviderCoercion:
    def test_callable_is_wrapped(self):
        provider = as_topology_provider(lambda r: nx.path_graph(2))
        assert provider.graph(0, []).number_of_nodes() == 2

    def test_provider_object_passthrough(self):
        class Provider:
            def graph(self, round_no, processes):
                return nx.path_graph(2)

        provider = Provider()
        assert as_topology_provider(provider) is provider

    def test_rejects_non_topology(self):
        with pytest.raises(TypeError):
            as_topology_provider(42)

    def test_adversary_sees_processes(self):
        seen = []

        class Omniscient:
            def graph(self, round_no, processes):
                seen.append(len(processes))
                return nx.path_graph(2)

        engine = SynchronousEngine(
            [EchoProcess(), EchoProcess()],
            Omniscient(),
            leader=None,
            config=EngineConfig(stop_when="budget", max_rounds=2),
        )
        engine.run()
        assert seen == [2, 2]


class TestTracing:
    def test_topology_trace_records_graphs(self):
        processes = [EchoProcess(), EchoProcess()]
        engine = SynchronousEngine(
            processes,
            lambda r: nx.path_graph(2),
            leader=None,
            config=EngineConfig(
                stop_when="budget",
                max_rounds=3,
                trace_level=TraceLevel.TOPOLOGY,
            ),
        )
        trace = engine.run().trace
        assert trace.rounds == 3
        assert all(record.graph.number_of_edges() == 1 for record in trace)
        assert trace.total_messages == 3 * 2

    def test_full_trace_records_deliveries(self):
        processes = [EchoProcess("a"), EchoProcess("b")]
        engine = SynchronousEngine(
            processes,
            lambda r: nx.path_graph(2),
            leader=None,
            config=EngineConfig(
                stop_when="budget", max_rounds=1, trace_level=TraceLevel.FULL
            ),
        )
        trace = engine.run().trace
        assert trace[0].deliveries[0] == Inbox(["b"])
        assert trace[0].deliveries[1] == Inbox(["a"])

    def test_no_trace_by_default(self):
        engine = SynchronousEngine(
            [EchoProcess(), EchoProcess()],
            lambda r: nx.path_graph(2),
            leader=None,
            config=EngineConfig(stop_when="budget", max_rounds=2),
        )
        assert engine.run().trace.rounds == 0


class TestDegreeOracleEngine:
    def test_degrees_observed_before_send(self):
        observed = []

        class Observer(Process):
            def observe_degree(self, round_no, degree):
                observed.append((round_no, degree))

            def compose(self, round_no):
                return "x"

            def deliver(self, round_no, inbox):
                pass

        engine = DegreeOracleEngine(
            [Observer(), Observer(), Observer()],
            lambda r: nx.star_graph(2),
            leader=None,
            config=EngineConfig(stop_when="budget", max_rounds=1),
        )
        engine.run()
        degrees = sorted(degree for _round, degree in observed)
        assert degrees == [1, 1, 2]

    def test_processes_without_hook_are_fine(self):
        engine = DegreeOracleEngine(
            [EchoProcess(), EchoProcess()],
            lambda r: nx.path_graph(2),
            leader=None,
            config=EngineConfig(stop_when="budget", max_rounds=1),
        )
        assert engine.run().rounds == 1

    def test_observers_resolved_at_construction(self):
        """The observer list is built once, not via getattr per round."""
        observed = []

        class Observer(Process):
            def observe_degree(self, round_no, degree):
                observed.append((round_no, degree))

            def compose(self, round_no):
                return "x"

            def deliver(self, round_no, inbox):
                pass

        engine = DegreeOracleEngine(
            [Observer(), EchoProcess()],
            lambda r: nx.path_graph(2),
            leader=None,
            config=EngineConfig(stop_when="budget", max_rounds=3),
        )
        assert engine._observers and engine._observers[0][0] == 0
        engine.run()
        assert observed == [(0, 1), (1, 1), (2, 1)]
