"""Tests for coin sources and randomised counting (footnote 2)."""

from __future__ import annotations

import pytest

from repro.adversaries.worst_case import worst_case_pd2_network
from repro.core.counting.randomized import count_with_random_ids
from repro.networks.generators.figures import paper_figure1
from repro.networks.generators.stars import star_network
from repro.networks.properties import dynamic_diameter
from repro.simulation.randomness import AdversarialCoins, CoinSource, FairCoins


class TestCoinSources:
    def test_fair_streams_differ(self):
        a = FairCoins(1, 0).draw_bits(64)
        b = FairCoins(1, 1).draw_bits(64)
        assert a != b

    def test_fair_streams_reproducible(self):
        assert FairCoins(5, 3).draw_bits(32) == FairCoins(5, 3).draw_bits(32)

    def test_fair_draws_advance(self):
        coins = FairCoins(1, 0)
        assert coins.draw_bits(64) != coins.draw_bits(64)

    def test_adversarial_identical_everywhere(self):
        assert AdversarialCoins().draw_bits(16) == AdversarialCoins().draw_bits(16)
        assert AdversarialCoins().draw_bits(4) == (0, 0, 0, 0)

    def test_protocol_conformance(self):
        assert isinstance(FairCoins(0, 0), CoinSource)
        assert isinstance(AdversarialCoins(), CoinSource)


class TestRandomisedCounting:
    def test_fair_coins_count_correctly(self):
        star = star_network(9)
        outcome = count_with_random_ids(star, 2, coins="fair", seed=3)
        assert outcome.count == 9

    def test_adversarial_coins_always_see_one(self):
        for n in (4, 13):
            network, _layout = worst_case_pd2_network(n)
            horizon = dynamic_diameter(network, start_rounds=2)
            outcome = count_with_random_ids(
                network, horizon, coins="adversarial"
            )
            assert outcome.count == 1

    def test_fair_coins_on_dynamic_figure1(self):
        figure = paper_figure1()
        horizon = dynamic_diameter(figure.graph, start_rounds=3)
        outcome = count_with_random_ids(
            figure.graph, horizon, coins="fair", seed=1
        )
        assert outcome.count == figure.graph.n

    def test_invalid_coins(self):
        with pytest.raises(ValueError, match="fair"):
            count_with_random_ids(star_network(3), 2, coins="quantum")

    def test_invalid_horizon(self):
        with pytest.raises(ValueError):
            count_with_random_ids(star_network(3), 0)
