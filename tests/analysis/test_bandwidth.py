"""Tests for bandwidth accounting."""

from __future__ import annotations

from repro.adversaries.worst_case import max_ambiguity_multigraph
from repro.analysis.bandwidth import (
    measure_engine_bandwidth,
    measure_labeled_bandwidth,
    payload_size,
)
from repro.core.counting.optimal import (
    AnonymousStateProcess,
    OptimalLeaderProcess,
)
from repro.core.counting.star import make_star_processes
from repro.core.counting.token_ids import IdFloodProcess
from repro.networks.generators.stars import star_network


class TestPayloadSize:
    def test_scalars(self):
        assert payload_size(7) == 1
        assert payload_size("beacon") == 1
        assert payload_size(1.5) == 1
        assert payload_size(None) == 0

    def test_containers(self):
        assert payload_size(()) == 1
        assert payload_size((1, 2)) == 3
        assert payload_size(frozenset({1, 2})) == 3
        assert payload_size(((1,), (2, 3))) == 1 + 2 + 3

    def test_nested_history_payload(self):
        history = (frozenset({1}), frozenset({1, 2}))
        # tuple + set(2 atoms... 1+1) + set(1+2)
        assert payload_size(history) == 1 + 2 + 3

    def test_dict(self):
        assert payload_size({"a": 1}) == 3


class TestEngineMetering:
    def test_star_protocol_traffic(self):
        processes, leader = make_star_processes(5)
        sent, delivered = measure_engine_bandwidth(
            processes, star_network(5), leader=leader, max_rounds=2
        )
        # Four spokes send one atom each; leader silent.
        assert sent == [4]
        # Each spoke payload is delivered once (to the centre).
        assert delivered == [4]

    def test_id_flood_traffic_grows(self):
        network = star_network(6)
        processes = [IdFloodProcess(index, 3) for index in range(6)]
        sent, _delivered = measure_engine_bandwidth(
            processes, network, max_rounds=4
        )
        assert sent[1] > sent[0]

    def test_compose_restored_after_metering(self):
        processes, leader = make_star_processes(4)
        measure_engine_bandwidth(
            processes, star_network(4), leader=leader, max_rounds=2
        )
        # The wrapper must be removed: compose is the class method again.
        assert "compose" not in processes[0].__dict__


class TestLabeledMetering:
    def test_optimal_counter_traffic_monotone(self):
        n = 13
        traffic = measure_labeled_bandwidth(
            OptimalLeaderProcess(),
            [AnonymousStateProcess() for _ in range(n)],
            max_ambiguity_multigraph(n),
        )
        assert len(traffic) >= 3
        assert traffic == sorted(traffic)
        assert traffic[-1] > traffic[0]

    def test_round0_traffic_is_empty_states_plus_beacon(self):
        n = 4
        traffic = measure_labeled_bandwidth(
            OptimalLeaderProcess(),
            [AnonymousStateProcess() for _ in range(n)],
            max_ambiguity_multigraph(n),
        )
        # n empty-state tuples (1 atom each) + 1 beacon atom.
        assert traffic[0] == n + 1
