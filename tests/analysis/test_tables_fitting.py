"""Tests for table rendering, fitting, and sweep helpers."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.fitting import fit_log3
from repro.analysis.sweep import log_spaced_sizes
from repro.analysis.tables import format_value, render_table


class TestRenderTable:
    def test_basic_rendering(self):
        table = render_table(
            [{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}], ["a", "b"]
        )
        lines = table.splitlines()
        assert lines[0].split("|")[0].strip() == "a"
        assert "22" in lines[3]

    def test_header_inference(self):
        table = render_table([{"col": 5}])
        assert table.splitlines()[0].startswith("col")

    def test_missing_keys_render_empty(self):
        table = render_table([{"a": 1}, {"b": 2}], ["a", "b"])
        assert table  # no KeyError

    def test_title(self):
        table = render_table([{"a": 1}], title="My table")
        assert table.splitlines()[0] == "My table"

    def test_empty_rows(self):
        table = render_table([], ["a"])
        assert "a" in table

    def test_format_value(self):
        assert format_value(True) == "yes"
        assert format_value(False) == "no"
        assert format_value(1.23456789) == "1.235"
        assert format_value(7) == "7"


class TestFitLog3:
    def test_perfect_fit(self):
        sizes = [3, 9, 27, 81]
        rounds = [2 + 1 * math.log(n, 3) for n in sizes]
        fit = fit_log3(sizes, rounds)
        assert fit.slope == pytest.approx(1.0)
        assert fit.intercept == pytest.approx(2.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_predict(self):
        fit = fit_log3([3, 9], [1.0, 2.0])
        assert fit.predict(27) == pytest.approx(3.0)

    def test_constant_data(self):
        fit = fit_log3([3, 9, 27], [5.0, 5.0, 5.0])
        assert fit.slope == pytest.approx(0.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_log3([1], [1.0])
        with pytest.raises(ValueError):
            fit_log3([1, 2], [1.0])
        with pytest.raises(ValueError):
            fit_log3([0, 2], [1.0, 2.0])
        with pytest.raises(ValueError):
            fit_log3([5, 5], [1.0, 2.0])

    def test_degenerate_sizes_message_is_descriptive(self):
        """Regression: zero variance in log_3 n must fail loudly and
        descriptively, not crash inside the least-squares fit."""
        with pytest.raises(ValueError, match="zero variance"):
            fit_log3([7, 7, 7], [1.0, 2.0, 3.0])

    def test_str(self):
        fit = fit_log3([3, 9, 27], [1.0, 2.0, 3.0])
        assert "log3" in str(fit)

    @given(
        st.floats(min_value=-3, max_value=3),
        st.floats(min_value=0.1, max_value=5),
    )
    def test_recovers_exact_coefficients(self, intercept, slope):
        sizes = [2, 7, 31, 144, 700]
        rounds = [intercept + slope * math.log(n, 3) for n in sizes]
        fit = fit_log3(sizes, rounds)
        assert fit.slope == pytest.approx(slope, abs=1e-8)
        assert fit.intercept == pytest.approx(intercept, abs=1e-8)


class TestLogSpacedSizes:
    def test_endpoints(self):
        sizes = log_spaced_sizes(2, 500)
        assert sizes[0] == 2
        assert sizes[-1] == 500

    def test_strictly_increasing(self):
        sizes = log_spaced_sizes(1, 10_000, per_decade=4)
        assert sizes == sorted(set(sizes))

    def test_density(self):
        few = log_spaced_sizes(1, 1000, per_decade=2)
        many = log_spaced_sizes(1, 1000, per_decade=10)
        assert len(many) > len(few)

    def test_validation(self):
        with pytest.raises(ValueError):
            log_spaced_sizes(0, 5)
        with pytest.raises(ValueError):
            log_spaced_sizes(10, 5)
