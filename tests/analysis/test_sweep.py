"""Tests for the log-spaced sweep helper."""

from __future__ import annotations

import pytest

from repro.analysis.sweep import log_spaced_sizes


class TestLogSpacedSizes:
    def test_covers_endpoints(self):
        sizes = log_spaced_sizes(2, 1000)
        assert sizes[0] == 2
        assert sizes[-1] == 1000

    def test_strictly_increasing(self):
        sizes = log_spaced_sizes(1, 500, per_decade=4)
        assert sizes == sorted(set(sizes))

    def test_density(self):
        # per_decade points per power of ten, up to rounding dedup.
        sizes = log_spaced_sizes(1, 100, per_decade=2)
        assert len(sizes) <= 2 * 2 + 2

    def test_single_point(self):
        assert log_spaced_sizes(7, 7) == [7]

    def test_bounds_validation(self):
        with pytest.raises(ValueError, match="lo <= hi"):
            log_spaced_sizes(0, 10)
        with pytest.raises(ValueError, match="lo <= hi"):
            log_spaced_sizes(10, 5)

    @pytest.mark.parametrize("per_decade", [0, -1, -6])
    def test_nonpositive_per_decade_rejected(self, per_decade):
        """Regression: per_decade <= 0 used to loop forever (ratio <= 1)."""
        with pytest.raises(ValueError, match="per_decade"):
            log_spaced_sizes(1, 100, per_decade=per_decade)
