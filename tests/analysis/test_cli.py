"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main, _parse_params


class TestParamParsing:
    def test_literals(self):
        assert _parse_params(["max_n=50", "sizes=(1, 2)"]) == {
            "max_n": 50,
            "sizes": (1, 2),
        }

    def test_strings_pass_through(self):
        assert _parse_params(["name=hello"]) == {"name": "hello"}

    def test_missing_equals(self):
        with pytest.raises(SystemExit):
            _parse_params(["oops"])


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "tab-kernel-structure" in out

    def test_run_small_experiment(self, capsys):
        code = main(
            [
                "run",
                "tab-star-pd1",
                "--param",
                "sizes=(2, 5)",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "PASS" in out

    def test_run_unknown_experiment(self):
        with pytest.raises(KeyError):
            main(["run", "tab-nope"])

    def test_all_accepts_jobs_and_cache(self, tmp_path, capsys, monkeypatch):
        # Shrink the registry to keep `all` fast; exercise both the
        # parallel dispatch and the cache round-trip.
        import repro.cli as cli_mod

        monkeypatch.setattr(
            cli_mod,
            "available_experiments",
            lambda: ["tab-star-pd1"],
        )
        cache_dir = tmp_path / "cache"
        assert main(["all", "--jobs", "2", "--cache-dir", str(cache_dir)]) == 0
        first = capsys.readouterr().out
        assert "PASS" in first
        assert list(cache_dir.glob("tab-star-pd1-*.json"))
        assert main(["all", "--jobs", "2", "--cache-dir", str(cache_dir)]) == 0
        second = capsys.readouterr().out
        assert "cache: hit" in second

    def test_report_command(self, tmp_path, capsys):
        path = tmp_path / "report.md"
        code = main(["report", str(path), "--experiment", "tab-star-pd1"])
        assert code == 0
        assert "tab-star-pd1" in path.read_text()
        assert "report written" in capsys.readouterr().out

    def test_report_accepts_jobs_and_cache(self, tmp_path, capsys):
        """Satellite: reports run through the parallel runner + cache."""
        cache_dir = tmp_path / "cache"
        args = [
            "report",
            str(tmp_path / "report.md"),
            "--experiment",
            "tab-star-pd1",
            "--experiment",
            "tab-kernel-structure",
            "--jobs",
            "2",
            "--cache-dir",
            str(cache_dir),
        ]
        assert main(args) == 0
        assert list(cache_dir.glob("tab-star-pd1-*.json"))
        capsys.readouterr()
        # Second report is served from the cache and says so.
        assert main(args) == 0
        report = (tmp_path / "report.md").read_text()
        assert "cache: hit" in report
        assert "all experiments passed" in report

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestCliObservability:
    RUN = ["run", "tab-star-pd1", "--param", "sizes=(2, 5)"]

    def test_metrics_out_snapshot(self, tmp_path, capsys):
        """Acceptance: --metrics-out writes a parseable snapshot."""
        import json

        path = tmp_path / "metrics.json"
        assert main([*self.RUN, "--metrics-out", str(path)]) == 0
        snapshot = json.loads(path.read_text())
        assert snapshot["counters"]["experiments.run"] == 1
        assert snapshot["counters"]["engine.rounds"] >= 2
        assert "span.experiment.run.s" in snapshot["histograms"]
        capsys.readouterr()
        # `repro stats` renders the same file as tables.
        assert main(["stats", str(path)]) == 0
        out = capsys.readouterr().out
        assert "engine.rounds" in out
        assert "Counters" in out

    def test_log_json_event_stream(self, tmp_path, capsys):
        import json

        path = tmp_path / "events.jsonl"
        assert (
            main([*self.RUN, "--log-json", str(path), "--log-level", "debug"])
            == 0
        )
        events = [json.loads(line) for line in path.read_text().splitlines()]
        assert {"log", "span"} <= {event["kind"] for event in events}
        assert any(
            event.get("name") == "experiment.run" for event in events
        )
        assert any(
            event.get("msg") == "round executed" for event in events
        )
        err = capsys.readouterr().err
        assert "round executed" in err  # --log-level debug on stderr
        capsys.readouterr()
        assert main(["stats", str(path)]) == 0
        out = capsys.readouterr().out
        assert "experiment.run" in out
        assert "Log records" in out

    def test_metrics_out_written_even_on_failure(self, tmp_path):
        with pytest.raises(KeyError):
            main(
                [
                    "run",
                    "tab-nope",
                    "--metrics-out",
                    str(tmp_path / "metrics.json"),
                ]
            )
        assert (tmp_path / "metrics.json").exists()

    def test_profile_flags(self, tmp_path, capsys):
        assert main([*self.RUN, "--profile", "--profile-mem"]) == 0
        err = capsys.readouterr().err
        assert "cProfile" in err
        assert "tracemalloc" in err

    def test_all_jobs_metrics_match_serial(self, tmp_path, monkeypatch, capsys):
        """Acceptance: --jobs N aggregates the same counters as serial."""
        import json

        import repro.cli as cli_mod

        monkeypatch.setattr(
            cli_mod,
            "available_experiments",
            lambda: ["tab-star-pd1", "tab-kernel-structure"],
        )
        serial_path = tmp_path / "serial.json"
        parallel_path = tmp_path / "parallel.json"
        assert main(["all", "--metrics-out", str(serial_path)]) == 0
        assert (
            main(
                ["all", "--jobs", "2", "--metrics-out", str(parallel_path)]
            )
            == 0
        )
        capsys.readouterr()
        serial = json.loads(serial_path.read_text())["counters"]
        parallel = json.loads(parallel_path.read_text())["counters"]
        assert serial == parallel
        assert serial["engine.rounds"] > 0
        assert serial["experiments.run"] == 2


class TestSerialTimeoutWarning:
    def test_hang_fault_in_serial_mode_prints_provenance(self, capsys):
        code = main(
            [
                "run",
                "tab-kernel-structure",
                "--inject-fault",
                "hang",
                "--timeout",
                "5",
                "--retries",
                "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "timeout 5s not enforced" in out
        assert "in-process (serial)" in out


class TestVerifyCommand:
    def test_fuzz_smoke(self, tmp_path, capsys):
        code = main(
            [
                "verify",
                "--fuzz",
                "5",
                "--seed",
                "0",
                "--fixtures-dir",
                str(tmp_path / "fixtures"),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "suite model" in out
        assert "suite kernel" in out
        assert "suite backend" in out
        assert "suite runtime" in out
        assert "0 violations -- PASS" in out

    def test_suite_selection(self, tmp_path, capsys):
        code = main(
            [
                "verify",
                "--fuzz",
                "3",
                "--suite",
                "kernel",
                "--fixtures-dir",
                str(tmp_path / "fixtures"),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "suite kernel" in out
        assert "suite model" not in out

    def test_self_test_and_replay(self, tmp_path, capsys):
        fixtures = tmp_path / "fixtures"
        code = main(
            [
                "verify",
                "--self-test",
                "--fixtures-dir",
                str(fixtures),
            ]
        )
        assert code == 0
        assert "self-test passed" in capsys.readouterr().out
        # The self-test leaves shrunk fixtures behind; each must replay
        # clean now that no mutant is armed.
        fixture_files = sorted(fixtures.glob("*.json"))
        assert fixture_files
        code = main(["verify", "--replay", str(fixture_files[0])])
        assert code == 0
        assert "passes" in capsys.readouterr().out

    def test_metrics_integration(self, tmp_path):
        import json

        metrics = tmp_path / "metrics.json"
        code = main(
            [
                "verify",
                "--fuzz",
                "3",
                "--suite",
                "kernel",
                "--fixtures-dir",
                str(tmp_path / "fixtures"),
                "--metrics-out",
                str(metrics),
            ]
        )
        assert code == 0
        counters = json.loads(metrics.read_text())["counters"]
        assert counters["verify.cases"] == 3
