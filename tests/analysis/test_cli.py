"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main, _parse_params


class TestParamParsing:
    def test_literals(self):
        assert _parse_params(["max_n=50", "sizes=(1, 2)"]) == {
            "max_n": 50,
            "sizes": (1, 2),
        }

    def test_strings_pass_through(self):
        assert _parse_params(["name=hello"]) == {"name": "hello"}

    def test_missing_equals(self):
        with pytest.raises(SystemExit):
            _parse_params(["oops"])


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "tab-kernel-structure" in out

    def test_run_small_experiment(self, capsys):
        code = main(
            [
                "run",
                "tab-star-pd1",
                "--param",
                "sizes=(2, 5)",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "PASS" in out

    def test_run_unknown_experiment(self):
        with pytest.raises(KeyError):
            main(["run", "tab-nope"])

    def test_all_accepts_jobs_and_cache(self, tmp_path, capsys, monkeypatch):
        # Shrink the registry to keep `all` fast; exercise both the
        # parallel dispatch and the cache round-trip.
        import repro.cli as cli_mod

        monkeypatch.setattr(
            cli_mod,
            "available_experiments",
            lambda: ["tab-star-pd1"],
        )
        cache_dir = tmp_path / "cache"
        assert main(["all", "--jobs", "2", "--cache-dir", str(cache_dir)]) == 0
        first = capsys.readouterr().out
        assert "PASS" in first
        assert list(cache_dir.glob("tab-star-pd1-*.json"))
        assert main(["all", "--jobs", "2", "--cache-dir", str(cache_dir)]) == 0
        second = capsys.readouterr().out
        assert "cache: hit" in second

    def test_report_command(self, tmp_path, capsys):
        path = tmp_path / "report.md"
        code = main(["report", str(path), "--experiment", "tab-star-pd1"])
        assert code == 0
        assert "tab-star-pd1" in path.read_text()
        assert "report written" in capsys.readouterr().out

    def test_report_accepts_jobs_and_cache(self, tmp_path, capsys):
        """Satellite: reports run through the parallel runner + cache."""
        cache_dir = tmp_path / "cache"
        args = [
            "report",
            str(tmp_path / "report.md"),
            "--experiment",
            "tab-star-pd1",
            "--experiment",
            "tab-kernel-structure",
            "--jobs",
            "2",
            "--cache-dir",
            str(cache_dir),
        ]
        assert main(args) == 0
        assert list(cache_dir.glob("tab-star-pd1-*.json"))
        capsys.readouterr()
        # Second report is served from the cache and says so.
        assert main(args) == 0
        report = (tmp_path / "report.md").read_text()
        assert "cache: hit" in report
        assert "all experiments passed" in report

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestCliObservability:
    RUN = ["run", "tab-star-pd1", "--param", "sizes=(2, 5)"]

    def test_metrics_out_snapshot(self, tmp_path, capsys):
        """Acceptance: --metrics-out writes a parseable snapshot."""
        import json

        path = tmp_path / "metrics.json"
        assert main([*self.RUN, "--metrics-out", str(path)]) == 0
        snapshot = json.loads(path.read_text())
        assert snapshot["counters"]["experiments.run"] == 1
        assert snapshot["counters"]["engine.rounds"] >= 2
        assert "span.experiment.run.s" in snapshot["histograms"]
        capsys.readouterr()
        # `repro stats` renders the same file as tables.
        assert main(["stats", str(path)]) == 0
        out = capsys.readouterr().out
        assert "engine.rounds" in out
        assert "Counters" in out

    def test_log_json_event_stream(self, tmp_path, capsys):
        import json

        path = tmp_path / "events.jsonl"
        assert (
            main([*self.RUN, "--log-json", str(path), "--log-level", "debug"])
            == 0
        )
        events = [json.loads(line) for line in path.read_text().splitlines()]
        assert {"log", "span"} <= {event["kind"] for event in events}
        assert any(
            event.get("name") == "experiment.run" for event in events
        )
        assert any(
            event.get("msg") == "round executed" for event in events
        )
        err = capsys.readouterr().err
        assert "round executed" in err  # --log-level debug on stderr
        capsys.readouterr()
        assert main(["stats", str(path)]) == 0
        out = capsys.readouterr().out
        assert "experiment.run" in out
        assert "Log records" in out

    def test_metrics_out_written_even_on_failure(self, tmp_path):
        with pytest.raises(KeyError):
            main(
                [
                    "run",
                    "tab-nope",
                    "--metrics-out",
                    str(tmp_path / "metrics.json"),
                ]
            )
        assert (tmp_path / "metrics.json").exists()

    def test_profile_flags(self, tmp_path, capsys):
        assert main([*self.RUN, "--profile", "--profile-mem"]) == 0
        err = capsys.readouterr().err
        assert "cProfile" in err
        assert "tracemalloc" in err

    def test_all_jobs_metrics_match_serial(self, tmp_path, monkeypatch, capsys):
        """Acceptance: --jobs N aggregates the same counters as serial."""
        import json

        import repro.cli as cli_mod

        monkeypatch.setattr(
            cli_mod,
            "available_experiments",
            lambda: ["tab-star-pd1", "tab-kernel-structure"],
        )
        serial_path = tmp_path / "serial.json"
        parallel_path = tmp_path / "parallel.json"
        assert main(["all", "--metrics-out", str(serial_path)]) == 0
        assert (
            main(
                ["all", "--jobs", "2", "--metrics-out", str(parallel_path)]
            )
            == 0
        )
        capsys.readouterr()
        serial = json.loads(serial_path.read_text())["counters"]
        parallel = json.loads(parallel_path.read_text())["counters"]
        assert serial == parallel
        assert serial["engine.rounds"] > 0
        assert serial["experiments.run"] == 2


class TestCliTelemetry:
    RUN = ["run", "tab-star-pd1", "--param", "sizes=(2, 5)"]

    def test_telemetry_events_in_log_json(self, tmp_path, capsys):
        import json

        path = tmp_path / "events.jsonl"
        assert (
            main([*self.RUN, "--telemetry", "--log-json", str(path)]) == 0
        )
        capsys.readouterr()
        events = [json.loads(line) for line in path.read_text().splitlines()]
        telemetry = [e for e in events if e["kind"] == "telemetry"]
        assert telemetry
        for event in telemetry:
            assert {"round", "informed", "terminated", "pid", "seq"} <= (
                event.keys()
            )

    def test_telemetry_every_syntax(self, tmp_path, capsys):
        import json

        path = tmp_path / "events.jsonl"
        code = main(
            [*self.RUN, "--telemetry", "every=2", "--log-json", str(path)]
        )
        assert code == 0
        capsys.readouterr()
        events = [json.loads(line) for line in path.read_text().splitlines()]
        rounds = [e["round"] for e in events if e["kind"] == "telemetry"]
        assert rounds and all(r % 2 == 0 for r in rounds)

    def test_telemetry_disabled_after_command(self, tmp_path):
        from repro.obs.telemetry import active

        assert main([*self.RUN, "--telemetry"]) == 0
        assert active() is None

    def test_bad_telemetry_argument(self):
        with pytest.raises(SystemExit):
            main([*self.RUN, "--telemetry", "every=nope"])


class TestCliStatsMultiPath:
    def test_merges_snapshots_and_events(self, tmp_path, capsys):
        import json

        run = ["run", "tab-star-pd1", "--param", "sizes=(2, 5)"]
        first = tmp_path / "m1.json"
        second = tmp_path / "m2.json"
        events = tmp_path / "events.jsonl"
        assert main([*run, "--metrics-out", str(first)]) == 0
        assert (
            main([*run, "--metrics-out", str(second), "--log-json", str(events)])
            == 0
        )
        capsys.readouterr()
        assert main(["stats", str(first), str(second), str(events)]) == 0
        out = capsys.readouterr().out
        assert "merged from 3 file(s)" in out
        # Counters doubled across the two snapshots.
        merged = [
            line for line in out.splitlines() if "experiments.run" in line
        ]
        assert merged and "2" in merged[0]

    def test_glob_pattern(self, tmp_path, capsys):
        run = ["run", "tab-star-pd1", "--param", "sizes=(2,)"]
        assert main([*run, "--metrics-out", str(tmp_path / "w1.json")]) == 0
        assert main([*run, "--metrics-out", str(tmp_path / "w2.json")]) == 0
        capsys.readouterr()
        assert main(["stats", str(tmp_path / "w*.json")]) == 0
        assert "merged from 2 file(s)" in capsys.readouterr().out

    def test_missing_path_exits(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["stats", str(tmp_path / "absent.json")])


class TestCliTrace:
    def _sweep(self, tmp_path, capsys) -> str:
        path = tmp_path / "events.jsonl"
        code = main(
            [
                "report",
                str(tmp_path / "report.md"),
                "--experiment",
                "tab-star-pd1",
                "--experiment",
                "tab-kernel-structure",
                "--jobs",
                "2",
                "--log-json",
                str(path),
            ]
        )
        assert code == 0
        capsys.readouterr()
        return str(path)

    def test_trace_renders_single_root_tree(self, tmp_path, capsys):
        """Acceptance: a --jobs 2 sweep stitches to one span tree."""
        events = self._sweep(tmp_path, capsys)
        assert main(["trace", events]) == 0
        out = capsys.readouterr().out
        assert "1 root(s)" in out
        assert "sweep.run" in out
        assert "experiment.run" in out

    def test_trace_flame_output(self, tmp_path, capsys):
        events = self._sweep(tmp_path, capsys)
        assert main(["trace", events, "--flame"]) == 0
        out = capsys.readouterr().out
        assert "sweep.run;experiment.run" in out

    def test_trace_missing_file(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["trace", str(tmp_path / "absent.jsonl")])


class TestCliTail:
    def test_tail_renders_journal_and_events(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        events = tmp_path / "events.jsonl"
        code = main(
            [
                "run",
                "tab-star-pd1",
                "--param",
                "sizes=(2, 5)",
                "--cache-dir",
                str(cache_dir),
                "--telemetry",
                "--log-json",
                str(events),
            ]
        )
        assert code == 0
        capsys.readouterr()
        journal = cache_dir / "journal.jsonl"
        assert main(["tail", str(journal), str(events)]) == 0
        out = capsys.readouterr().out
        assert "journal completed" in out
        assert "telemetry object" in out
        assert "span experiment.run" in out

    def test_tail_missing_file(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["tail", str(tmp_path / "absent.jsonl")])


class TestCliBenchReport:
    def test_reports_trajectory(self, tmp_path, capsys):
        from repro.obs.bench import append_record, make_record

        path = tmp_path / "BENCH_trajectory.json"
        workloads = {
            "flooding": [{"n": 64, "object_s": 1.0, "fast_s": 0.1, "speedup": 10.0}]
        }
        for speedup in (10.0, 4.0):
            record = make_record(
                mode="quick",
                workloads={
                    name: [dict(rows[0], speedup=speedup)]
                    for name, rows in workloads.items()
                },
                wall_s=1.0,
                git_rev="deadbee",
            )
            append_record(record, path)
        assert main(["bench-report", str(path)]) == 1  # 4.0/10.0 < 0.8
        out = capsys.readouterr().out
        assert "REGRESSION" in out
        assert main(["bench-report", str(path), "--threshold", "0.3"]) == 0

    def test_missing_trajectory_is_clean(self, tmp_path, capsys):
        assert main(["bench-report", str(tmp_path / "absent.json")]) == 0
        assert "no benchmark runs" in capsys.readouterr().out


class TestSerialTimeoutWarning:
    def test_hang_fault_in_serial_mode_prints_provenance(self, capsys):
        code = main(
            [
                "run",
                "tab-kernel-structure",
                "--inject-fault",
                "hang",
                "--timeout",
                "5",
                "--retries",
                "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "timeout 5s not enforced" in out
        assert "in-process (serial)" in out


class TestVerifyCommand:
    def test_fuzz_smoke(self, tmp_path, capsys):
        code = main(
            [
                "verify",
                "--fuzz",
                "5",
                "--seed",
                "0",
                "--fixtures-dir",
                str(tmp_path / "fixtures"),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "suite model" in out
        assert "suite kernel" in out
        assert "suite backend" in out
        assert "suite runtime" in out
        assert "0 violations -- PASS" in out

    def test_suite_selection(self, tmp_path, capsys):
        code = main(
            [
                "verify",
                "--fuzz",
                "3",
                "--suite",
                "kernel",
                "--fixtures-dir",
                str(tmp_path / "fixtures"),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "suite kernel" in out
        assert "suite model" not in out

    def test_self_test_and_replay(self, tmp_path, capsys):
        fixtures = tmp_path / "fixtures"
        code = main(
            [
                "verify",
                "--self-test",
                "--fixtures-dir",
                str(fixtures),
            ]
        )
        assert code == 0
        assert "self-test passed" in capsys.readouterr().out
        # The self-test leaves shrunk fixtures behind; each must replay
        # clean now that no mutant is armed.
        fixture_files = sorted(fixtures.glob("*.json"))
        assert fixture_files
        code = main(["verify", "--replay", str(fixture_files[0])])
        assert code == 0
        assert "passes" in capsys.readouterr().out

    def test_metrics_integration(self, tmp_path):
        import json

        metrics = tmp_path / "metrics.json"
        code = main(
            [
                "verify",
                "--fuzz",
                "3",
                "--suite",
                "kernel",
                "--fixtures-dir",
                str(tmp_path / "fixtures"),
                "--metrics-out",
                str(metrics),
            ]
        )
        assert code == 0
        counters = json.loads(metrics.read_text())["counters"]
        assert counters["verify.cases"] == 3


class TestCliSharding:
    def test_run_not_owned_is_clean_exit(self, capsys):
        # Exactly one of the two shards owns the task; the other must
        # say so and exit 0 rather than pretend it ran.
        argv = ["run", "tab-star-pd1", "--param", "sizes=(2,)"]
        outputs = []
        for index in range(2):
            assert main(argv + ["--shard", f"{index}/2"]) == 0
            outputs.append(capsys.readouterr().out)
        owned = [out for out in outputs if "PASS" in out]
        skipped = [out for out in outputs if "is not owned by" in out]
        assert len(owned) == 1 and len(skipped) == 1
        assert "nothing ran" in skipped[0]

    def test_bad_shard_spec_exits(self):
        with pytest.raises(SystemExit):
            main(["run", "tab-star-pd1", "--shard", "two"])

    def test_merge_journals_command(self, tmp_path, capsys):
        import json

        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        a.write_text(json.dumps({"event": "x", "ts": 2.0}) + "\n")
        b.write_text(json.dumps({"event": "y", "ts": 1.0}) + "\n")
        out = tmp_path / "merged.jsonl"
        assert main(["merge-journals", str(out), str(a), str(b)]) == 0
        text = capsys.readouterr().out
        assert "merged 2 journal(s), 2 line(s)" in text
        assert len(out.read_text().splitlines()) == 2

    def test_merge_journals_missing_source_exits(self, tmp_path):
        with pytest.raises(SystemExit):
            main(
                [
                    "merge-journals",
                    str(tmp_path / "out.jsonl"),
                    str(tmp_path / "nope.jsonl"),
                ]
            )


class TestCliLaneBudgetAndJit:
    def test_max_lane_nodes_flag_runs(self, capsys):
        code = main(
            [
                "run",
                "tab-star-pd1",
                "--param",
                "sizes=(2, 5)",
                "--backend",
                "fast",
                "--max-lane-nodes",
                "3",
            ]
        )
        assert code == 0
        assert "PASS" in capsys.readouterr().out

    def test_invalid_budget_exits(self):
        with pytest.raises(SystemExit, match="max_lane_nodes"):
            main(
                [
                    "run",
                    "tab-star-pd1",
                    "--backend",
                    "fast",
                    "--max-lane-nodes",
                    "0",
                ]
            )

    def test_jit_off_runs_on_scipy(self, capsys):
        from repro.simulation import jit

        code = main(
            [
                "run",
                "tab-star-pd1",
                "--param",
                "sizes=(2,)",
                "--backend",
                "fast",
                "--jit",
                "off",
            ]
        )
        assert code == 0
        assert "PASS" in capsys.readouterr().out
        # the context unwound: ambient status is back to the default
        assert jit.jit_status() == ("scipy", "jit not enabled")
