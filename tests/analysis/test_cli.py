"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main, _parse_params


class TestParamParsing:
    def test_literals(self):
        assert _parse_params(["max_n=50", "sizes=(1, 2)"]) == {
            "max_n": 50,
            "sizes": (1, 2),
        }

    def test_strings_pass_through(self):
        assert _parse_params(["name=hello"]) == {"name": "hello"}

    def test_missing_equals(self):
        with pytest.raises(SystemExit):
            _parse_params(["oops"])


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "tab-kernel-structure" in out

    def test_run_small_experiment(self, capsys):
        code = main(
            [
                "run",
                "tab-star-pd1",
                "--param",
                "sizes=(2, 5)",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "PASS" in out

    def test_run_unknown_experiment(self):
        with pytest.raises(KeyError):
            main(["run", "tab-nope"])

    def test_all_accepts_jobs_and_cache(self, tmp_path, capsys, monkeypatch):
        # Shrink the registry to keep `all` fast; exercise both the
        # parallel dispatch and the cache round-trip.
        from repro.analysis import parallel as parallel_mod

        monkeypatch.setattr(
            parallel_mod,
            "available_experiments",
            lambda: ["tab-star-pd1"],
        )
        cache_dir = tmp_path / "cache"
        assert main(["all", "--jobs", "2", "--cache-dir", str(cache_dir)]) == 0
        first = capsys.readouterr().out
        assert "PASS" in first
        assert list(cache_dir.glob("tab-star-pd1-*.json"))
        assert main(["all", "--jobs", "2", "--cache-dir", str(cache_dir)]) == 0
        second = capsys.readouterr().out
        assert "cache: hit" in second

    def test_report_command(self, tmp_path, capsys):
        path = tmp_path / "report.md"
        code = main(["report", str(path), "--experiment", "tab-star-pd1"])
        assert code == 0
        assert "tab-star-pd1" in path.read_text()
        assert "report written" in capsys.readouterr().out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
