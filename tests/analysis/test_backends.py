"""Differential tests: the fast backend against the object-engine oracle.

The object engine is the semantics oracle; every protocol and every
registry experiment that supports ``backend="fast"`` must produce the
same leader outputs, round counts, and checks.  Integer and boolean
values are compared exactly; floats (push-sum estimates) to within
accumulation-order tolerance.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.adversaries.worst_case import max_ambiguity_multigraph
from repro.analysis.registry import experiment_options, run_experiment
from repro.cli import main
from repro.core.counting.chain import count_chain_pd2
from repro.core.counting.flooding import flood_time_via_protocol, flood_times_batch
from repro.core.counting.gossip import (
    gossip_size_estimates,
    gossip_size_estimates_batch,
)
from repro.core.counting.star import count_star
from repro.core.counting.token_ids import count_with_ids, count_with_ids_batch
from repro.core.dissemination import (
    disseminate_by_flooding,
    disseminate_by_flooding_batch,
)
from repro.networks.generators.random_dynamic import RandomConnectedAdversary
from repro.obs.metrics import MetricsRegistry, use_registry

SEEDS = (11, 22, 33)

# Small-parameter overrides per backend-aware experiment, so the
# differential sweep stays quick while touching every code path.
BACKEND_EXPERIMENTS: dict[str, dict] = {
    "tab-star-pd1": {"sizes": (2, 5, 17)},
    "tab-baselines": {
        "id_sizes": (4, 13),
        "gossip_sizes": (16,),
        "gossip_rounds": 40,
    },
    "tab-corollary1-diameter": {
        "sizes": (4, 13),
        "chain_lengths": (0, 2),
    },
    "tab-dynamics-families": {"n": 12, "gossip_rounds": 60, "check_rounds": 6},
    "tab-token-dissemination": {"sizes": (8, 16), "tokens_per_size": (2,)},
    "upper-vs-lower": {"sizes": (3, 5)},
}


def network_for(n, seed):
    return RandomConnectedAdversary(n, seed=seed).as_dynamic_graph()


def rows_equivalent(object_rows, fast_rows):
    assert len(object_rows) == len(fast_rows)
    for object_row, fast_row in zip(object_rows, fast_rows):
        assert object_row.keys() == fast_row.keys()
        for key, object_value in object_row.items():
            fast_value = fast_row[key]
            if isinstance(object_value, float):
                assert fast_value == pytest.approx(
                    object_value, rel=1e-9, abs=1e-12
                ), key
            else:
                assert object_value == fast_value, key


class TestProtocolEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("n", (2, 7, 23))
    def test_star(self, n, seed):
        del seed  # the star is deterministic; seeds keep the matrix shape
        object_outcome = count_star(n)
        fast_outcome = count_star(n, backend="fast")
        assert object_outcome == fast_outcome

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("n", (4, 12, 25))
    def test_flooding(self, n, seed):
        object_rounds = flood_time_via_protocol(network_for(n, seed), 0)
        fast_rounds = flood_time_via_protocol(
            network_for(n, seed), 0, backend="fast"
        )
        assert object_rounds == fast_rounds

    def test_flooding_batch_equals_singles(self):
        jobs = [(network_for(n, seed), 0) for n in (4, 12) for seed in SEEDS]
        singles = [
            flood_time_via_protocol(network_for(n, seed), 0)
            for n in (4, 12)
            for seed in SEEDS
        ]
        assert flood_times_batch(jobs) == singles

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("n", (8, 16))
    def test_gossip(self, n, seed):
        rounds = 40
        object_estimates = gossip_size_estimates(
            RandomConnectedAdversary(n, seed=seed), n, rounds
        )
        fast_estimates = gossip_size_estimates(
            RandomConnectedAdversary(n, seed=seed), n, rounds, backend="fast"
        )
        assert len(object_estimates) == len(fast_estimates) == rounds
        assert np.allclose(
            object_estimates, fast_estimates, rtol=1e-9, equal_nan=True
        )

    def test_gossip_batch_equals_singles(self):
        specs = [
            (RandomConnectedAdversary(n, seed=seed), n)
            for n in (8, 16)
            for seed in SEEDS
        ]
        batch = gossip_size_estimates_batch(specs, 30)
        for (topology, n), curve in zip(
            [
                (RandomConnectedAdversary(n, seed=seed), n)
                for n in (8, 16)
                for seed in SEEDS
            ],
            batch,
        ):
            assert np.allclose(
                gossip_size_estimates(topology, n, 30), curve, rtol=1e-9
            )

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("n,horizon", ((5, 4), (14, 6)))
    def test_token_ids(self, n, horizon, seed):
        object_outcome = count_with_ids(network_for(n, seed), horizon)
        fast_outcome = count_with_ids(
            network_for(n, seed), horizon, backend="fast"
        )
        assert object_outcome == fast_outcome

    def test_token_ids_batch_mixed_horizons(self):
        jobs = [(network_for(5, 11), 3), (network_for(14, 22), 7)]
        outcomes = count_with_ids_batch(jobs)
        singles = [
            count_with_ids(network_for(5, 11), 3),
            count_with_ids(network_for(14, 22), 7),
        ]
        assert outcomes == singles

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("n", (6, 15))
    def test_dissemination_flooding(self, n, seed):
        assignment = {0: 7, n - 1: 9, n // 2: 7}
        object_result = disseminate_by_flooding(network_for(n, seed), assignment)
        fast_result = disseminate_by_flooding(
            network_for(n, seed), assignment, backend="fast"
        )
        assert object_result == fast_result

    def test_dissemination_batch_equals_singles(self):
        jobs = [
            (network_for(n, seed), {0: 1, 1: 2})
            for n in (6, 15)
            for seed in SEEDS
        ]
        singles = [
            disseminate_by_flooding(network_for(n, seed), {0: 1, 1: 2})
            for n in (6, 15)
            for seed in SEEDS
        ]
        assert disseminate_by_flooding_batch(jobs) == singles

    @pytest.mark.parametrize("n", (3, 7, 13))
    @pytest.mark.parametrize("chain_length", (0, 3))
    def test_chain(self, n, chain_length):
        object_outcome = count_chain_pd2(max_ambiguity_multigraph(n), chain_length)
        fast_outcome = count_chain_pd2(
            max_ambiguity_multigraph(n), chain_length, backend="fast"
        )
        assert object_outcome == fast_outcome

    @pytest.mark.parametrize("n", (4, 10))
    def test_engine_counters_equal(self, n):
        def counters_for(backend):
            registry = MetricsRegistry()
            with use_registry(registry):
                for seed in SEEDS:
                    flood_time_via_protocol(
                        network_for(n, seed), 0, backend=backend
                    )
            return {
                name: value
                for name, value in registry.snapshot()["counters"].items()
                if name.startswith("engine.")
                and not name.startswith("engine.fast")
            }

        assert counters_for("object") == counters_for("fast")


class TestExperimentEquivalence:
    @pytest.mark.parametrize("experiment", sorted(BACKEND_EXPERIMENTS))
    def test_declares_backend_option(self, experiment):
        assert "backend" in experiment_options(experiment)

    @pytest.mark.parametrize("experiment", sorted(BACKEND_EXPERIMENTS))
    def test_fast_matches_object(self, experiment):
        params = BACKEND_EXPERIMENTS[experiment]
        object_result = run_experiment(experiment, **params)
        fast_result = run_experiment(experiment, backend="fast", **params)
        assert object_result.checks == fast_result.checks
        assert object_result.passed and fast_result.passed
        rows_equivalent(object_result.rows, fast_result.rows)

    def test_undeclared_option_absent(self):
        assert "seed" not in experiment_options("tab-star-pd1")
        assert "jobs" not in experiment_options("tab-star-pd1")


class TestCliBackend:
    def test_run_backend_fast(self, capsys):
        code = main(
            [
                "run",
                "tab-star-pd1",
                "--backend",
                "fast",
                "--param",
                "sizes=(2, 5)",
            ]
        )
        assert code == 0
        assert "PASS" in capsys.readouterr().out

    def test_run_backend_rejected_for_unsupporting_experiment(self):
        with pytest.raises(SystemExit, match="does not support"):
            main(["run", "tab-kernel-structure", "--backend", "fast"])

    def test_run_backend_object_is_default_noop(self, capsys):
        code = main(
            [
                "run",
                "tab-kernel-structure",
                "--backend",
                "object",
                "--param",
                "max_round=2",
            ]
        )
        assert code == 0
        capsys.readouterr()
