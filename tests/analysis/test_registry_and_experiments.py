"""Tests for the experiment registry and (scaled-down) experiment runs.

Full-size experiment runs live in ``benchmarks/``; here every experiment
is executed with small parameters so the suite stays fast while still
exercising each code path end to end, and every check must pass.
"""

from __future__ import annotations

import pytest

from repro.analysis.registry import (
    ExperimentResult,
    available_experiments,
    get_experiment,
    run_experiment,
)


class TestRegistry:
    def test_all_design_experiments_registered(self):
        expected = {
            "fig1-pd2-example",
            "fig2-transformation",
            "fig3-indistinguishable-r0",
            "fig4-indistinguishable-r1",
            "tab-kernel-structure",
            "tab-ambiguity-horizon",
            "fig-counting-rounds-vs-n",
            "tab-corollary1-diameter",
            "tab-oracle-gap",
            "tab-star-pd1",
            "tab-baselines",
            "tab-general-k",
            "tab-adaptive-adversary",
            "tab-adversarial-randomness",
            "tab-naming-vs-counting",
            "tab-dynamics-families",
            "tab-bandwidth",
            "tab-token-dissemination",
            "upper-vs-lower",
        }
        assert set(available_experiments()) == expected

    def test_unknown_experiment(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            get_experiment("tab-nonexistent")

    def test_result_render_and_pass(self):
        result = ExperimentResult(
            experiment="x",
            title="T",
            headers=["a"],
            rows=[{"a": 1}],
            checks={"ok": True, "bad": False},
            notes=["hello"],
        )
        assert not result.passed
        assert result.failed_checks() == ["bad"]
        rendered = result.render()
        assert "T" in rendered
        assert "PASS" in rendered and "FAIL" in rendered
        assert "note: hello" in rendered


SMALL_PARAMS = {
    "fig1-pd2-example": {},
    "fig2-transformation": {},
    "fig3-indistinguishable-r0": {},
    "fig4-indistinguishable-r1": {},
    "tab-kernel-structure": {"max_round": 2, "closed_form_rounds": 2},
    "tab-ambiguity-horizon": {"sizes": (1, 4, 5, 13)},
    "fig-counting-rounds-vs-n": {
        "max_n": 60,
        "per_decade": 3,
        "fair_seeds": (0,),
    },
    "tab-corollary1-diameter": {
        "sizes": (4, 13),
        "chain_lengths": (0, 2),
        "diameter_start_rounds": 2,
    },
    "tab-oracle-gap": {"sizes": (4, 13)},
    "tab-star-pd1": {"sizes": (2, 9)},
    "tab-baselines": {
        "id_sizes": (4, 13),
        "gossip_sizes": (16,),
        "gossip_rounds": 40,
    },
    "tab-general-k": {
        "ks": (2, 3),
        "max_round": 1,
        "twin_n": 4,
        "random_trials": 2,
    },
    "tab-adaptive-adversary": {
        "sizes": (2, 4, 13),
        "exhaustive_max_n": 4,
    },
    "tab-adversarial-randomness": {"sizes": (4, 13)},
    "tab-naming-vs-counting": {"star_sizes": (4, 8), "symmetry_depth": 5},
    "tab-bandwidth": {"sizes": (13, 40)},
    "tab-token-dissemination": {
        "sizes": (8, 16),
        "tokens_per_size": (2,),
    },
    "tab-dynamics-families": {
        "n": 12,
        "check_rounds": 8,
        "gossip_rounds": 60,
    },
    "upper-vs-lower": {"sizes": (3, 5)},
}


@pytest.mark.parametrize("experiment", sorted(SMALL_PARAMS))
def test_experiment_runs_and_all_checks_pass(experiment):
    result = run_experiment(experiment, **SMALL_PARAMS[experiment])
    assert result.experiment == experiment
    assert result.rows
    assert result.headers
    assert result.passed, f"failed checks: {result.failed_checks()}"
    # Every experiment renders without error.
    assert result.render()
