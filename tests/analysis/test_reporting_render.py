"""Tests for Markdown reporting and ASCII rendering."""

from __future__ import annotations

import networkx as nx

from repro.analysis.registry import ExperimentResult, run_experiment
from repro.analysis.reporting import full_report, result_to_markdown, write_report
from repro.networks.generators.figures import paper_figure1, paper_figure2_multigraph
from repro.networks.render import (
    render_ambiguity_curve,
    render_dynamic_graph,
    render_multigraph_round,
    render_round,
)


class TestMarkdownReporting:
    def test_result_section(self):
        result = run_experiment("tab-star-pd1", sizes=(2, 5))
        markdown = result_to_markdown(result)
        assert markdown.startswith("## tab-star-pd1")
        assert "```" in markdown
        assert "Checks: 2/2 — PASS" in markdown

    def test_failed_result_lists_failures(self):
        result = ExperimentResult(
            experiment="x",
            title="t",
            headers=["a"],
            rows=[{"a": 1}],
            checks={"good": True, "bad": False},
        )
        markdown = result_to_markdown(result)
        assert "1/2 — FAIL" in markdown
        assert "FAILED: bad" in markdown

    def test_full_report_selected(self):
        report = full_report(
            experiments=["tab-star-pd1"], title="Mini report"
        )
        assert report.startswith("# Mini report")
        assert "all experiments passed" in report

    def test_write_report(self, tmp_path):
        path = write_report(
            tmp_path / "report.md", experiments=["tab-star-pd1"]
        )
        assert path.read_text().startswith("# Experiment report")


class TestRendering:
    def test_render_round(self):
        text = render_round(nx.path_graph(3), labels={0: "leader"})
        assert "leader: 1" in text
        assert "1: leader, 2" in text

    def test_render_dynamic_graph(self):
        figure = paper_figure1()
        text = render_dynamic_graph(figure.graph, 3)
        assert text.count("round") == 3
        assert "(5 edges)" in text

    def test_render_multigraph_round(self):
        multigraph = paper_figure2_multigraph()
        text = render_multigraph_round(multigraph, 0)
        assert "w3" in text
        assert "[1,2,3]" in text

    def test_render_ambiguity_curve(self):
        text = render_ambiguity_curve([4, 2, 1, 0])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].count("#") > lines[1].count("#")
        assert lines[-1].endswith("0")

    def test_render_ambiguity_curve_scales_large_widths(self):
        text = render_ambiguity_curve([1000, 0], max_bar=10)
        assert text.splitlines()[0].count("#") <= 11

    def test_render_empty_curve(self):
        assert render_ambiguity_curve([]) == "(no rounds)"
