"""Tests for the fault-tolerant sweep runtime.

Fast-by-construction: every sweep here uses tiny star/kernel
parameterisations, retries with near-zero backoff, and the
deterministic fault-injection harness from
``repro.analysis.runtime.faults``.
"""

from __future__ import annotations

import os

import pytest

from repro.analysis.parallel import parallel_map
from repro.analysis.registry import ExperimentRequest
from repro.analysis.runtime import (
    FaultPlan,
    Journal,
    ResultCache,
    RetryPolicy,
    TaskTimeout,
    WorkerCrash,
    classify_error,
    run_sweep,
)
from repro.analysis.runtime.errors import FATAL, RETRYABLE
from repro.analysis.runtime.runner import merge_snapshots_in_task_order
from repro.obs.metrics import MetricsRegistry, counter, gauge, use_registry

#: A sweep of three distinct tiny tasks (distinct params => distinct
#: cache/journal keys).
REQUESTS = [
    ExperimentRequest("tab-star-pd1", params={"sizes": sizes})
    for sizes in ((2,), (2, 5), (2, 5, 9))
]

#: Retry fast: single retry, millisecond backoff, no jitter.
QUICK_RETRY = RetryPolicy(retries=1, backoff_s=0.001, jitter=0.0)


def counters_of(registry: MetricsRegistry) -> dict[str, int]:
    return registry.snapshot()["counters"]


class TestRetryPolicy:
    def test_attempts(self):
        assert RetryPolicy(retries=0).attempts() == 1
        assert RetryPolicy(retries=3).attempts() == 4

    def test_delay_is_deterministic_and_exponential(self):
        policy = RetryPolicy(backoff_s=0.5, backoff_factor=2.0, jitter=0.25)
        first = policy.delay_s(3, 1)
        assert first == policy.delay_s(3, 1)  # pure function
        assert 0.5 <= first <= 0.5 * 1.25
        assert 1.0 <= policy.delay_s(3, 2) <= 1.0 * 1.25
        assert policy.delay_s(3, 1) != policy.delay_s(4, 1)  # jitter spread

    def test_no_jitter_is_exact(self):
        policy = RetryPolicy(backoff_s=0.25, backoff_factor=2.0, jitter=0.0)
        assert policy.delay_s(0, 1) == 0.25
        assert policy.delay_s(0, 3) == 1.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"retries": -1},
            {"timeout_s": 0},
            {"max_failures": -1},
            {"jitter": 1.5},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)


class TestErrorClassification:
    def test_retryable(self):
        for exc in (
            WorkerCrash("died"),
            TaskTimeout("slow"),
            OSError("io"),
            TimeoutError(),
            EOFError(),
            MemoryError(),
        ):
            assert classify_error(exc) == RETRYABLE

    def test_fatal(self):
        for exc in (ValueError("bad"), AssertionError(), KeyError("x")):
            assert classify_error(exc) == FATAL


class TestFaultPlan:
    def test_parse_pinned(self):
        plan = FaultPlan.parse("kill@3")
        assert (plan.kind, plan.at) == ("kill", 3)
        assert plan.target(10) == 3

    def test_parse_seeded(self):
        plan = FaultPlan.parse("raise")
        assert plan.at is None
        assert plan.target(7) == plan.target(7)  # deterministic draw
        assert 0 <= plan.target(7) < 7

    @pytest.mark.parametrize("text", ["explode@1", "kill@x"])
    def test_parse_rejects(self, text):
        with pytest.raises(ValueError):
            FaultPlan.parse(text)

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(kind="kill", at=-1)


class TestJournal:
    def test_replay_folds_last_event(self, tmp_path):
        journal = Journal(tmp_path / "journal.jsonl")
        journal.record_sweep(tasks=2, resume=False)
        journal.record_started(
            "tab-a-1111", experiment="tab-a", params_hash="1111", attempt=1
        )
        journal.record_started(
            "tab-b-2222", experiment="tab-b", params_hash="2222", attempt=1
        )
        journal.record_failed(
            "tab-b-2222", attempt=1, error="boom", kind="retryable", final=False
        )
        journal.record_completed(
            "tab-a-1111", attempt=1, result_path="/tmp/a.json"
        )
        journal.close()
        entries = journal.replay()
        assert entries["tab-a-1111"].status == "completed"
        assert entries["tab-a-1111"].result_path == "/tmp/a.json"
        assert entries["tab-b-2222"].status == "retrying"
        assert entries["tab-b-2222"].error == "boom"

    def test_unreadable_line_skipped(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = Journal(path)
        journal.record_started(
            "tab-a-1111", experiment="tab-a", params_hash="1111", attempt=1
        )
        journal.close()
        with open(path, "a", encoding="utf-8") as stream:
            stream.write('{"event": "completed", "task": "tab-a-1')  # torn
        entries = journal.replay()
        assert entries["tab-a-1111"].status == "started"

    def test_missing_file_is_empty(self, tmp_path):
        assert Journal(tmp_path / "nope.jsonl").replay() == {}

    def test_truncate(self, tmp_path):
        journal = Journal(tmp_path / "journal.jsonl")
        journal.record_sweep(tasks=1, resume=False)
        journal.truncate()
        assert journal.replay() == {}


class TestRunSweepSerial:
    def test_results_in_request_order(self):
        outcome = run_sweep(REQUESTS)
        assert outcome.passed and not outcome.provenance
        assert [len(r.rows) for r in outcome.results] == [1, 2, 3]

    def test_string_shorthand(self):
        outcome = run_sweep(["tab-kernel-structure"])
        assert outcome.results[0].experiment == "tab-kernel-structure"

    def test_unknown_id_fails_before_running(self):
        with pytest.raises(KeyError, match="tab-nope"):
            run_sweep(["tab-nope"])

    def test_transient_fault_is_retried(self, tmp_path):
        journal = Journal(tmp_path / "journal.jsonl")
        with use_registry(MetricsRegistry()) as registry:
            outcome = run_sweep(
                REQUESTS,
                journal=journal,
                policy=QUICK_RETRY,
                faults=FaultPlan(kind="raise", at=1),
            )
        assert outcome.passed and outcome.failed == 0
        counters = counters_of(registry)
        assert counters["runtime.retries"] == 1
        assert counters["runtime.faults.injected"] == 1
        assert counters["runtime.tasks.completed"] == 3
        entries = journal.replay()
        assert all(e.status == "completed" for e in entries.values())

    def test_kill_fault_simulated_in_process(self):
        with use_registry(MetricsRegistry()) as registry:
            outcome = run_sweep(
                REQUESTS, policy=QUICK_RETRY, faults=FaultPlan(kind="kill", at=0)
            )
        assert outcome.passed
        assert counters_of(registry)["runtime.retries"] == 1

    def test_fatal_fault_aborts_with_original_exception(self, tmp_path):
        journal = Journal(tmp_path / "journal.jsonl")
        with pytest.raises(ValueError, match="injected fatal fault"):
            run_sweep(
                REQUESTS,
                journal=journal,
                policy=QUICK_RETRY,
                faults=FaultPlan(kind="fatal", at=1),
            )
        entries = journal.replay()
        statuses = {e.task: e.status for e in entries.values()}
        assert list(statuses.values()).count("completed") == 1
        assert list(statuses.values()).count("failed") == 1

    def test_fatal_fault_never_retries(self):
        with use_registry(MetricsRegistry()) as registry:
            with pytest.raises(ValueError):
                run_sweep(
                    REQUESTS,
                    policy=RetryPolicy(retries=5, backoff_s=0.001),
                    faults=FaultPlan(kind="fatal", at=0),
                )
        assert "runtime.retries" not in counters_of(registry)

    def test_failure_budget_tolerates_and_synthesizes(self):
        with use_registry(MetricsRegistry()) as registry:
            outcome = run_sweep(
                REQUESTS,
                policy=RetryPolicy(retries=0, max_failures=1),
                faults=FaultPlan(kind="fatal", at=1),
            )
        assert not outcome.passed and outcome.failed == 1
        assert len(outcome.results) == 3
        placeholder = outcome.results[1]
        assert placeholder.checks == {"completed": False}
        assert "injected fatal fault" in placeholder.rows[0]["error"]
        assert any("failed after 1 attempt" in p for p in outcome.provenance)
        assert counters_of(registry)["runtime.tasks.failed"] == 1

    def test_cache_reuse_skips_execution(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_sweep(REQUESTS, cache=cache)
        with use_registry(MetricsRegistry()) as registry:
            outcome = run_sweep(REQUESTS, cache=cache)
        assert outcome.passed
        counters = counters_of(registry)
        assert counters["cache.hits"] == 3
        assert "experiments.run" not in counters

    def test_cache_policy_off_skips_store(self, tmp_path):
        cache = ResultCache(tmp_path)
        request = ExperimentRequest(
            "tab-star-pd1", params={"sizes": (2,)}, cache_policy="off"
        )
        run_sweep([request], cache=cache)
        assert not list(tmp_path.glob("tab-star-pd1-*.json"))


class TestRunSweepPool:
    def test_matches_serial_results_and_metrics(self):
        with use_registry(MetricsRegistry()) as serial_registry:
            serial = run_sweep(REQUESTS)
        with use_registry(MetricsRegistry()) as pool_registry:
            pooled = run_sweep(REQUESTS, jobs=2)
        assert [r.rows for r in pooled.results] == [
            r.rows for r in serial.results
        ]
        serial_counters = {
            k: v
            for k, v in counters_of(serial_registry).items()
            if not k.startswith("runtime.")
        }
        pool_counters = {
            k: v
            for k, v in counters_of(pool_registry).items()
            if not k.startswith("runtime.")
        }
        assert serial_counters == pool_counters
        assert (
            serial_registry.snapshot()["gauges"]
            == pool_registry.snapshot()["gauges"]
        )

    def test_worker_kill_is_retried(self, tmp_path):
        journal = Journal(tmp_path / "journal.jsonl")
        with use_registry(MetricsRegistry()) as registry:
            outcome = run_sweep(
                REQUESTS,
                jobs=2,
                journal=journal,
                policy=QUICK_RETRY,
                faults=FaultPlan(kind="kill", at=0),
            )
        assert outcome.passed and outcome.failed == 0
        counters = counters_of(registry)
        assert counters["runtime.worker_deaths"] == 1
        assert counters["runtime.retries"] == 1
        assert counters["runtime.tasks.completed"] == 3
        assert all(e.status == "completed" for e in journal.replay().values())

    def test_hang_is_timed_out_and_retried(self):
        with use_registry(MetricsRegistry()) as registry:
            outcome = run_sweep(
                REQUESTS,
                jobs=2,
                policy=RetryPolicy(
                    retries=1, timeout_s=0.75, backoff_s=0.001, jitter=0.0
                ),
                faults=FaultPlan(kind="hang", at=1),
            )
        assert outcome.passed
        counters = counters_of(registry)
        assert counters["runtime.timeouts"] == 1
        assert counters["runtime.retries"] == 1

    def test_degrades_to_serial_after_worker_deaths(self):
        with use_registry(MetricsRegistry()) as registry:
            outcome = run_sweep(
                REQUESTS,
                jobs=2,
                policy=QUICK_RETRY,
                faults=FaultPlan(kind="kill", at=0),
                degrade_after=1,
            )
        assert outcome.passed
        assert counters_of(registry)["runtime.degraded"] == 1
        assert any("degraded to serial" in p for p in outcome.provenance)

    def test_kill_without_retries_aborts(self, tmp_path):
        journal = Journal(tmp_path / "journal.jsonl")
        with pytest.raises(WorkerCrash, match="worker died"):
            run_sweep(
                REQUESTS,
                jobs=2,
                journal=journal,
                policy=RetryPolicy(retries=0),
                faults=FaultPlan(kind="kill", at=0),
            )
        text = (tmp_path / "journal.jsonl").read_text()
        assert '"event": "aborted"' in text


class TestSnapshotMergeOrder:
    """Regression: pool gauge merges must not depend on completion order."""

    @staticmethod
    def _snapshot(task_index: int, value: int) -> tuple[int, dict]:
        registry = MetricsRegistry()
        with use_registry(registry):
            counter("merged.tasks")
            gauge("merged.last", value)
        return (task_index, registry.snapshot())

    def test_gauges_fold_in_task_order_not_completion_order(self):
        # Completion order scrambled: task 2 finished first, then 0, 1.
        snapshots = [
            self._snapshot(2, 200),
            self._snapshot(0, 0),
            self._snapshot(1, 100),
        ]
        with use_registry(MetricsRegistry()) as registry:
            merge_snapshots_in_task_order(snapshots)
        snapshot = registry.snapshot()
        # Last-write-wins gauges resolve to the *highest task index*,
        # whatever order the workers raced in; counters just add.
        assert snapshot["gauges"]["merged.last"] == 200
        assert snapshot["counters"]["merged.tasks"] == 3

    def test_pool_gauges_deterministic_and_match_serial(self):
        requests = REQUESTS + [
            ExperimentRequest(
                "tab-kernel-structure",
                params={"max_round": 3, "sparse_max_round": 4},
            )
        ]
        with use_registry(MetricsRegistry()) as serial_registry:
            assert run_sweep(requests).passed
        gauges = serial_registry.snapshot()["gauges"]
        assert "sparse.nnz" in gauges  # the experiment really sets one
        for _ in range(2):
            with use_registry(MetricsRegistry()) as pool_registry:
                assert run_sweep(requests, jobs=2).passed
            assert pool_registry.snapshot()["gauges"] == gauges


class TestResumeSemantics:
    def test_resume_skips_completed_and_requeues_rest(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        journal = Journal(tmp_path / "cache" / "journal.jsonl")
        with pytest.raises(ValueError):
            run_sweep(
                REQUESTS,
                cache=cache,
                journal=journal,
                policy=RetryPolicy(retries=0),
                faults=FaultPlan(kind="fatal", at=2),
            )
        with use_registry(MetricsRegistry()) as registry:
            outcome = run_sweep(
                REQUESTS, cache=cache, journal=journal, resume=True
            )
        assert outcome.passed and outcome.skipped == 2
        counters = counters_of(registry)
        assert counters["runtime.resume.skipped"] == 2
        assert counters["runtime.resume.requeued"] == 1
        assert counters["experiments.run"] == 1  # zero re-execution
        assert any("resumed: 2 completed" in p for p in outcome.provenance)
        reference = run_sweep(REQUESTS)
        assert [r.rows for r in outcome.results] == [
            r.rows for r in reference.results
        ]
        assert [r.checks for r in outcome.results] == [
            r.checks for r in reference.results
        ]

    def test_fresh_run_truncates_journal(self, tmp_path):
        journal = Journal(tmp_path / "journal.jsonl")
        journal.record_started(
            "tab-zzz-0000", experiment="tab-zzz", params_hash="0000", attempt=1
        )
        run_sweep(REQUESTS[:1], journal=journal)
        assert "tab-zzz" not in (tmp_path / "journal.jsonl").read_text()

    def test_resume_on_empty_journal_runs_everything(self, tmp_path):
        journal = Journal(tmp_path / "journal.jsonl")
        with use_registry(MetricsRegistry()) as registry:
            outcome = run_sweep(
                REQUESTS[:2], journal=journal, resume=True
            )
        assert outcome.passed and outcome.skipped == 0
        assert counters_of(registry)["experiments.run"] == 2


def _crash_on_three(value: int) -> int:
    if value == 3:
        os._exit(13)
    return value * 2


class TestParallelMapCrash:
    def test_worker_death_names_the_item(self):
        """An ``os._exit`` mid-item surfaces as WorkerCrash naming the
        lost item, not as an opaque BrokenProcessPool."""
        with pytest.raises(
            WorkerCrash, match=r"worker process died while running item"
        ) as excinfo:
            parallel_map(_crash_on_three, range(6), jobs=2)
        assert "_crash_on_three" in str(excinfo.value)


class TestSerialTimeoutVisibility:
    """``timeout_s`` cannot preempt in-process attempts; say so loudly."""

    def test_serial_hang_fault_retried_with_provenance_note(self):
        outcome = run_sweep(
            REQUESTS,
            policy=RetryPolicy(
                retries=1, timeout_s=5.0, backoff_s=0.001, jitter=0.0
            ),
            faults=FaultPlan(kind="hang", at=1),
        )
        assert outcome.passed
        assert any("not enforced" in note for note in outcome.provenance)

    def test_no_note_when_timeout_unset(self):
        outcome = run_sweep(REQUESTS, policy=QUICK_RETRY)
        assert outcome.passed
        assert not any("not enforced" in note for note in outcome.provenance)

    def test_degraded_serial_tail_also_notes_timeout(self):
        # After graceful degradation the remaining tasks run in-process
        # too, so the same budget-evaporates trace must appear.
        outcome = run_sweep(
            REQUESTS,
            jobs=2,
            policy=RetryPolicy(
                retries=1, timeout_s=30.0, backoff_s=0.001, jitter=0.0
            ),
            faults=FaultPlan(kind="kill", at=0),
            degrade_after=1,
        )
        assert outcome.passed
        assert any("degraded to serial" in note for note in outcome.provenance)
        assert any("not enforced" in note for note in outcome.provenance)


class TestSharding:
    """Deterministic task partitioning for multi-machine sweeps."""

    def test_shard_of_is_stable_and_in_range(self):
        from repro.analysis.runtime import shard_of

        # sha256-based: stable across processes and Python versions.
        assert shard_of("tab-star-pd1-deadbeef", 4) == shard_of(
            "tab-star-pd1-deadbeef", 4
        )
        for count in (1, 2, 3, 7):
            owners = {shard_of(f"task-{i}", count) for i in range(64)}
            assert owners <= set(range(count))
        assert shard_of("anything", 1) == 0

    def test_shard_of_rejects_bad_count(self):
        from repro.analysis.runtime import shard_of

        with pytest.raises(ValueError, match="shard count"):
            shard_of("key", 0)

    def test_parse_shard(self):
        from repro.analysis.runtime import parse_shard

        assert parse_shard("0/2") == (0, 2)
        assert parse_shard("3/4") == (3, 4)
        for bad in ("2", "a/b", "2/2", "-1/2", "0/0"):
            with pytest.raises(ValueError):
                parse_shard(bad)

    def test_shards_partition_the_sweep(self):
        outcomes = [
            run_sweep(REQUESTS, shard=(index, 2)) for index in range(2)
        ]
        owned = [len(outcome.results) for outcome in outcomes]
        assert sum(owned) == len(REQUESTS)  # disjoint cover, no overlap
        for index, outcome in enumerate(outcomes):
            assert outcome.passed
            assert any(
                f"shard {index}/2: owns {owned[index]} of 3"
                in line
                for line in outcome.provenance
            )

    def test_shard_counter_and_validation(self):
        with use_registry(MetricsRegistry()) as registry:
            outcome = run_sweep(REQUESTS, shard=(0, 2))
        counters = counters_of(registry)
        assert counters["runtime.shard.owned"] == len(outcome.results)
        with pytest.raises(ValueError, match="shard index"):
            run_sweep(REQUESTS, shard=(2, 2))


class TestMergeJournals:
    def _sharded_sweep(self, tmp_path):
        from repro.analysis.runtime import merge_journals

        cache = ResultCache(tmp_path / "cache")
        sources = []
        for index in range(2):
            journal_path = tmp_path / f"shard-{index}.jsonl"
            run_sweep(
                REQUESTS,
                cache=cache,
                journal=Journal(journal_path),
                shard=(index, 2),
            )
            sources.append(journal_path)
        merged = tmp_path / "cache" / "journal.jsonl"
        lines = merge_journals(merged, sources)
        return cache, merged, lines

    def test_merged_resume_re_executes_nothing(self, tmp_path):
        cache, merged, lines = self._sharded_sweep(tmp_path)
        assert lines > 0
        with use_registry(MetricsRegistry()) as registry:
            outcome = run_sweep(
                REQUESTS, cache=cache, journal=Journal(merged), resume=True
            )
        assert outcome.passed and outcome.skipped == len(REQUESTS)
        counters = counters_of(registry)
        assert counters["runtime.resume.skipped"] == len(REQUESTS)
        assert "experiments.run" not in counters  # zero re-execution
        reference = run_sweep(REQUESTS)
        assert [r.rows for r in outcome.results] == [
            r.rows for r in reference.results
        ]

    def test_merge_sorts_by_timestamp(self, tmp_path):
        from repro.analysis.runtime import merge_journals

        import json as json_mod

        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        a.write_text(
            json_mod.dumps({"event": "x", "ts": 3.0}) + "\n"
            + json_mod.dumps({"event": "y", "ts": 1.0}) + "\n"
        )
        b.write_text(
            json_mod.dumps({"event": "z", "ts": 2.0}) + "\n"
            + "not json\n"
        )
        out = tmp_path / "merged.jsonl"
        assert merge_journals(out, [a, b]) == 3  # torn line skipped
        stamps = [
            json_mod.loads(line)["ts"]
            for line in out.read_text().splitlines()
        ]
        assert stamps == sorted(stamps)

    def test_stampless_records_keep_source_position(self, tmp_path):
        from repro.analysis.runtime import merge_journals

        import json as json_mod

        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        # Shard a's "completed" line lost its ts stamp (a torn write).
        # It must stay *after* its own "started" line -- under the old
        # sort-by-ts-default-0.0 it teleported to the front of the
        # merge, last-event-wins replay regressed the task to
        # "started", and --resume re-ran a completed task.
        a.write_text(
            json_mod.dumps({"event": "started", "task": "t", "ts": 5.0})
            + "\n"
            + json_mod.dumps(
                {"event": "completed", "task": "t", "result_path": "r.json"}
            )
            + "\n"
        )
        # Shard b *leads* with a stamp-less line: it inherits nothing
        # and stays at the front, in source order.
        b.write_text(
            json_mod.dumps({"event": "sweep", "tasks": 1})
            + "\n"
            + json_mod.dumps({"event": "aborted", "failures": 0, "ts": 1.0})
            + "\n"
        )
        out = tmp_path / "merged.jsonl"
        assert merge_journals(out, [a, b]) == 4
        events = [
            json_mod.loads(line)["event"]
            for line in out.read_text().splitlines()
        ]
        assert events == ["sweep", "aborted", "started", "completed"]
        entry = Journal(out).replay()["t"]
        assert entry.status == "completed"
        assert entry.result_path == "r.json"

    def test_merge_requires_sources(self, tmp_path):
        from repro.analysis.runtime import merge_journals

        with pytest.raises(ValueError, match="at least one journal"):
            merge_journals(tmp_path / "out.jsonl", [])
