"""Tests for the typed ExperimentRequest API and its compat shims."""

from __future__ import annotations

import inspect

import pytest

from repro.analysis.parallel import ResultCache, run_experiments
from repro.analysis.registry import (
    OPTION_FIELDS,
    ExperimentRequest,
    available_experiments,
    experiment_options,
    get_experiment,
    run_experiment,
)


class TestEffectiveParams:
    def test_default_request_is_paramless(self):
        assert ExperimentRequest("tab-star-pd1").effective_params() == {}

    def test_object_backend_contributes_nothing(self):
        """The engine default stays keyless, like pre-backend runs."""
        request = ExperimentRequest("tab-star-pd1", backend="object")
        assert request.effective_params() == {}

    def test_backend_applied_when_declared(self):
        request = ExperimentRequest("tab-star-pd1", backend="fast")
        assert request.effective_params() == {"backend": "fast"}

    def test_backend_dropped_when_undeclared(self):
        request = ExperimentRequest("fig2-transformation", backend="fast")
        assert request.effective_params() == {}

    def test_jobs_and_seed_routed_by_declaration(self):
        assert ExperimentRequest(
            "tab-ambiguity-horizon", jobs=2
        ).effective_params() == {"jobs": 2}
        assert ExperimentRequest("tab-star-pd1", jobs=2).effective_params() == {}
        assert ExperimentRequest(
            "tab-adversarial-randomness", seed=7
        ).effective_params() == {"seed": 7}

    def test_explicit_params_win(self):
        request = ExperimentRequest(
            "tab-star-pd1", params={"backend": "object"}, backend="fast"
        )
        assert request.effective_params() == {"backend": "object"}

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError, match="tab-nope"):
            ExperimentRequest("tab-nope").effective_params()

    def test_cache_policy_validated(self):
        with pytest.raises(ValueError, match="cache_policy"):
            ExperimentRequest("tab-star-pd1", cache_policy="sometimes")


class TestGoldenCacheKeys:
    """Request-era cache keys are byte-identical to the pre-request ones.

    The digests below were recorded on the seed tree (before the
    ExperimentRequest refactor); existing on-disk caches must keep
    hitting.
    """

    GOLDEN = {
        ("tab-star-pd1", ()): "5b08dbc5a2e883aa",
        ("tab-star-pd1", (("backend", "fast"),)): "bfbc2b5839a3d461",
        ("tab-star-pd1", (("sizes", (2, 5)),)): "8ae8498c29611f50",
        ("tab-kernel-structure", ()): "7d70001661e76efa",
        (
            "fig-counting-rounds-vs-n",
            (("max_n", 30), ("per_decade", 3)),
        ): "0f6c58b370ff9d2c",
        (
            "tab-token-dissemination",
            (("backend", "fast"), ("seed", 7)),
        ): "e86e382ade1f66a5",
        (
            "tab-ambiguity-horizon",
            (("jobs", 2), ("sizes", (2, 5, 14))),
        ): "ba30a4bc21e5f538",
    }

    def test_raw_keys_unchanged(self):
        for (experiment, items), digest in self.GOLDEN.items():
            assert ResultCache.key(experiment, dict(items)) == digest

    def test_non_json_param_rejected_with_key_name(self):
        # A plain object used to be hashed through repr() -- embedding
        # its memory address, so cache identity changed every run.
        class Opaque:
            pass

        with pytest.raises(TypeError, match="'adversary'"):
            ResultCache.key(
                "tab-star-pd1", {"sizes": (2, 5), "adversary": Opaque()}
            )

    def test_non_json_error_names_experiment_and_type(self):
        with pytest.raises(TypeError, match="tab-star-pd1.*set"):
            ResultCache.key("tab-star-pd1", {"sizes": {2, 5}})

    def test_request_resolves_to_golden_keys(self):
        """Sweep-wide option fields produce the same params dict (and
        hence the same digest) the signature-sniffing path produced."""
        cases = [
            (ExperimentRequest("tab-star-pd1"), "5b08dbc5a2e883aa"),
            (
                ExperimentRequest("tab-star-pd1", backend="fast"),
                "bfbc2b5839a3d461",
            ),
            (
                ExperimentRequest("tab-star-pd1", backend="object"),
                "5b08dbc5a2e883aa",
            ),
            (
                ExperimentRequest(
                    "tab-token-dissemination", backend="fast", seed=7
                ),
                "e86e382ade1f66a5",
            ),
            (
                ExperimentRequest(
                    "tab-ambiguity-horizon",
                    params={"sizes": (2, 5, 14)},
                    jobs=2,
                ),
                "ba30a4bc21e5f538",
            ),
            (
                ExperimentRequest("tab-kernel-structure", backend="fast"),
                "7d70001661e76efa",  # undeclared option: key unchanged
            ),
        ]
        for request, digest in cases:
            params = request.effective_params()
            assert ResultCache.key(request.experiment, params) == digest


class TestDeclarationsMatchSignatures:
    """The declarative opt-ins must never drift from the real signatures
    (the honesty check that replaces runtime signature sniffing)."""

    @pytest.mark.parametrize("experiment", available_experiments())
    def test_options_match_signature(self, experiment):
        parameters = inspect.signature(get_experiment(experiment)).parameters
        accepts = {
            name
            for name in OPTION_FIELDS
            if name in parameters
            or any(
                p.kind is inspect.Parameter.VAR_KEYWORD
                for p in parameters.values()
            )
        }
        assert experiment_options(experiment) == accepts


class TestRunExperimentEntryPoint:
    def test_request_equals_kwargs_sugar(self):
        via_request = run_experiment(
            ExperimentRequest("tab-star-pd1", params={"sizes": (2, 5)})
        )
        via_kwargs = run_experiment("tab-star-pd1", sizes=(2, 5))
        assert via_request.rows == via_kwargs.rows
        assert via_request.checks == via_kwargs.checks

    def test_request_plus_kwargs_rejected(self):
        with pytest.raises(TypeError, match="ExperimentRequest.params"):
            run_experiment(ExperimentRequest("tab-star-pd1"), sizes=(2, 5))

    def test_backend_field_flows_to_experiment(self):
        result = run_experiment(
            ExperimentRequest(
                "tab-star-pd1", params={"sizes": (2, 5)}, backend="fast"
            )
        )
        assert result.passed


class TestRemovedParamsKwarg:
    """The PR-4 ``params=`` deprecation shims are gone: both entry
    points now fail fast with a TypeError that points at the request
    API (``grid_requests`` + ``run_sweep``/``requests=``)."""

    def test_run_experiments_params_removed(self):
        with pytest.raises(TypeError, match="grid_requests"):
            run_experiments(["tab-star-pd1"], params={"backend": "fast"})

    def test_run_experiments_still_runs_without_params(self):
        results = run_experiments(["tab-star-pd1"])
        assert results[0].experiment == "tab-star-pd1"
        assert results[0].passed

    def test_full_report_params_removed(self):
        from repro.analysis.reporting import full_report

        with pytest.raises(TypeError, match="grid_requests"):
            full_report(
                experiments=["tab-star-pd1"], params={"backend": "fast"}
            )

    def test_full_report_requests_path_works(self):
        from repro.analysis.reporting import full_report

        report = full_report(
            requests=[ExperimentRequest("tab-star-pd1", backend="fast")]
        )
        assert "tab-star-pd1" in report
