"""Tests for the parallel experiment runner and the result cache."""

from __future__ import annotations

import logging

import pytest

from repro.analysis.parallel import (
    ResultCache,
    parallel_map,
    run_experiments,
    timed_run,
)
from repro.analysis.registry import ExperimentResult, run_experiment
from repro.obs.metrics import MetricsRegistry, use_registry

EXPERIMENTS = ["tab-star-pd1", "tab-kernel-structure"]


def _square(x: int) -> int:
    return x * x


def _fail_on_three(x: int) -> int:
    # Module-level so the process pool can pickle it.
    if x == 3:
        raise ValueError("three is right out")
    return x


class TestParallelMap:
    def test_serial_matches_plain_loop(self):
        assert parallel_map(_square, range(5), jobs=1) == [0, 1, 4, 9, 16]

    def test_parallel_preserves_order(self):
        assert parallel_map(_square, range(8), jobs=2) == [
            x * x for x in range(8)
        ]

    def test_empty(self):
        assert parallel_map(_square, [], jobs=4) == []

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_failure_names_the_item(self, caplog, jobs):
        """Satellite: a failing item is logged/annotated with context."""
        with caplog.at_level(logging.ERROR, logger="repro"):
            with pytest.raises(ValueError, match="three") as excinfo:
                parallel_map(_fail_on_three, range(6), jobs=jobs)
        errors = [
            record
            for record in caplog.records
            if record.message == "parallel item failed"
        ]
        assert len(errors) == 1
        assert errors[0].index == 3
        assert errors[0].item == "3"
        assert errors[0].fn == "_fail_on_three"
        assert "ValueError" in errors[0].error
        notes = getattr(excinfo.value, "__notes__", [])
        assert any("item 3" in note for note in notes)


class TestTimedRun:
    def test_appends_timing_note(self):
        result = timed_run("tab-star-pd1", sizes=(2, 5))
        assert result.passed
        assert any(note.startswith("timing:") for note in result.notes)


class TestRunExperiments:
    def test_parallel_identical_to_serial(self):
        """Acceptance: --jobs N produces identical tables and checks."""
        serial = run_experiments(EXPERIMENTS, jobs=1)
        parallel = run_experiments(EXPERIMENTS, jobs=2)
        for a, b in zip(serial, parallel):
            assert a.experiment == b.experiment
            assert a.rows == b.rows
            assert a.headers == b.headers
            assert a.checks == b.checks

    def test_order_matches_request(self):
        names = list(reversed(EXPERIMENTS))
        results = run_experiments(names, jobs=2)
        assert [r.experiment for r in results] == names


class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        result = run_experiment("tab-star-pd1", sizes=(2, 5))
        cache.store(result, {"sizes": (2, 5)})
        loaded = cache.load("tab-star-pd1", {"sizes": (2, 5)})
        assert loaded is not None
        assert loaded.rows == result.rows
        assert loaded.checks == result.checks
        assert any(note.startswith("cache: hit") for note in loaded.notes)

    def test_key_depends_on_params(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.key("e", {"n": 1}) != cache.key("e", {"n": 2})
        assert cache.key("e", {}) != cache.key("f", {})

    def test_miss_on_empty_dir(self, tmp_path):
        assert ResultCache(tmp_path).load("tab-star-pd1", {}) is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.path("tab-star-pd1", {}).parent.mkdir(exist_ok=True)
        cache.path("tab-star-pd1", {}).write_text("{not json")
        assert cache.load("tab-star-pd1", {}) is None

    def test_run_experiments_uses_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        first = run_experiments(["tab-star-pd1"], cache=cache)
        second = run_experiments(["tab-star-pd1"], cache=cache)
        assert not any(
            note.startswith("cache: hit") for note in first[0].notes
        )
        assert any(note.startswith("cache: hit") for note in second[0].notes)
        assert first[0].rows == second[0].rows
        assert first[0].checks == second[0].checks

    def test_hit_note_is_idempotent(self, tmp_path):
        """Satellite: repeated loads never accumulate duplicate notes."""
        cache = ResultCache(tmp_path)
        result = run_experiment("tab-star-pd1", sizes=(2, 5))
        cache.store(result, {})
        loaded = cache.load("tab-star-pd1", {})
        # Store the *loaded* result back (hit note and all), then load
        # again: the note must not double up.
        cache.store(loaded, {})
        reloaded = cache.load("tab-star-pd1", {})
        hit_notes = [
            note for note in reloaded.notes if note.startswith("cache: hit")
        ]
        assert len(hit_notes) == 1

    def test_hit_and_miss_counters(self, tmp_path):
        cache = ResultCache(tmp_path)
        with use_registry(MetricsRegistry()) as registry:
            assert cache.load("tab-star-pd1", {}) is None
            cache.store(run_experiment("tab-star-pd1", sizes=(2, 5)), {})
            assert cache.load("tab-star-pd1", {}) is not None
            assert cache.load("tab-star-pd1", {}) is not None
        assert registry.value("cache.misses") == 1
        assert registry.value("cache.hits") == 2

    def test_cached_render_identical(self, tmp_path):
        """A reload renders the same table (values survive JSON)."""
        from repro.analysis.tables import render_table

        cache = ResultCache(tmp_path)
        result = run_experiment("tab-kernel-structure", max_round=2, sparse_max_round=4)
        cache.store(result, {})
        loaded = cache.load("tab-kernel-structure", {})
        assert render_table(loaded.rows, loaded.headers) == render_table(
            result.rows, result.headers
        )


class TestMetricsAggregation:
    def test_parallel_counters_equal_serial(self):
        """Acceptance: worker registries merge losslessly into the
        caller's registry -- --jobs N aggregates the same counters."""
        with use_registry(MetricsRegistry()) as serial:
            run_experiments(EXPERIMENTS, jobs=1)
        with use_registry(MetricsRegistry()) as parallel:
            run_experiments(EXPERIMENTS, jobs=2)
        serial_counters = serial.snapshot()["counters"]
        parallel_counters = parallel.snapshot()["counters"]
        assert serial_counters == parallel_counters
        assert serial_counters["experiments.run"] == len(EXPERIMENTS)
        assert serial_counters["engine.rounds"] > 0
        assert serial_counters["engine.messages_delivered"] > 0

    def test_timed_run_records_span_histogram(self):
        with use_registry(MetricsRegistry()) as registry:
            timed_run("tab-star-pd1", sizes=(2, 5))
        snapshot = registry.snapshot()
        assert snapshot["counters"]["experiments.run"] == 1
        assert snapshot["counters"]["experiments.passed"] == 1
        assert snapshot["histograms"]["span.experiment.run.s"]["count"] == 1


class TestExperimentResultSerialisation:
    def test_to_from_dict_roundtrip(self):
        result = ExperimentResult(
            experiment="x",
            title="t",
            headers=["a", "b"],
            rows=[{"a": 1, "b": 2.5}, {"a": True, "b": "s"}],
            checks={"ok": True, "bad": False},
            notes=["n1"],
        )
        clone = ExperimentResult.from_dict(result.to_dict())
        assert clone.rows == result.rows
        assert clone.checks == result.checks
        assert clone.render() == result.render()

    def test_non_json_values_render_stably(self):
        result = ExperimentResult(
            experiment="x",
            title="t",
            headers=["a"],
            rows=[{"a": (1, 2)}],
        )
        clone = ExperimentResult.from_dict(result.to_dict())
        assert clone.render() == result.render()


class TestExperimentJobsParam:
    def test_sweep_jobs_identical(self):
        serial = run_experiment(
            "fig-counting-rounds-vs-n", max_n=30, per_decade=3, jobs=1
        )
        parallel = run_experiment(
            "fig-counting-rounds-vs-n", max_n=30, per_decade=3, jobs=2
        )
        assert serial.rows == parallel.rows
        assert serial.checks == parallel.checks
        # The global fit checks need the full-size sweep; the per-size
        # exactness checks must hold even on this shrunken one.
        assert all(
            ok for name, ok in serial.checks.items() if name.startswith("n")
        )

    def test_horizon_jobs_identical(self):
        serial = run_experiment(
            "tab-ambiguity-horizon", sizes=(2, 5, 14), jobs=1
        )
        parallel = run_experiment(
            "tab-ambiguity-horizon", sizes=(2, 5, 14), jobs=2
        )
        assert serial.rows == parallel.rows
        assert serial.checks == parallel.checks
        assert serial.passed
