"""Tests for the differential drivers (backend and runtime suites)."""

from __future__ import annotations

from repro.verify.drivers import check_backend_case, check_runtime_case
from repro.verify.strategies import Case, generate_cases


class TestBackendDriver:
    def test_generated_cases_pass(self):
        for case in generate_cases("backend", 8, 0):
            assert check_backend_case(case) == []

    def test_each_protocol_covered(self):
        kinds = {case.kind for case in generate_cases("backend", 30, 0)}
        assert kinds == {"flood", "token-ids", "dissemination"}

    def test_multi_lane_flood_agrees(self):
        case = Case(
            "backend",
            "flood",
            11,
            {"family": "arbitrary", "n": 6, "lanes": 3},
        )
        assert check_backend_case(case) == []

    def test_token_ids_on_t_interval_agrees(self):
        case = Case(
            "backend",
            "token-ids",
            3,
            {"family": "t-interval", "n": 7, "lanes": 2},
        )
        assert check_backend_case(case) == []

    def test_dissemination_on_markov_agrees(self):
        case = Case(
            "backend",
            "dissemination",
            5,
            {"family": "markov", "n": 5, "lanes": 2},
        )
        assert check_backend_case(case) == []


class TestRuntimeDriver:
    def test_generated_case_passes(self):
        case = generate_cases("runtime", 1, 0)[0]
        assert check_runtime_case(case) == []

    def test_explicit_workload_passes(self):
        case = Case(
            "runtime",
            "sweep-equivalence",
            0,
            {
                "workload": [
                    ["tab-star-pd1", {"sizes": [2, 5]}],
                    ["fig2-transformation", {}],
                ]
            },
        )
        assert check_runtime_case(case) == []
