"""Tests for the generative strategies and the shrinker."""

from __future__ import annotations

import json

import pytest

from repro.networks.dynamic_graph import DynamicGraph
from repro.verify.strategies import (
    MODEL_KINDS,
    SUITES,
    Case,
    build_network,
    generate_cases,
    shrink,
    shrink_candidates,
)


class TestCase_:
    def test_roundtrip(self):
        case = Case("model", "pd", 7, {"layers": [2, 1], "rounds": 3})
        assert Case.from_dict(case.to_dict()) == case

    def test_params_are_json_clean(self):
        for suite in SUITES:
            for case in generate_cases(suite, 20, 0):
                json.dumps(case.to_dict())  # must not raise

    def test_describe_mentions_suite_kind_and_seed(self):
        case = Case("kernel", "kernel-identities", 42, {"r": 1, "n": 5})
        text = case.describe()
        assert "kernel" in text and "seed=42" in text and "r=1" in text

    def test_with_params_leaves_original_untouched(self):
        case = Case("model", "arbitrary", 0, {"n": 5, "rounds": 2})
        smaller = case.with_params(n=3)
        assert case.params["n"] == 5
        assert smaller.params["n"] == 3


class TestGeneration:
    def test_deterministic_per_seed(self):
        for suite in SUITES:
            assert generate_cases(suite, 10, 3) == generate_cases(suite, 10, 3)

    def test_different_seeds_differ(self):
        assert generate_cases("model", 10, 0) != generate_cases("model", 10, 1)

    def test_prefix_stability(self):
        # Case i is a pure function of (seed, suite, i): asking for more
        # cases never changes the earlier ones.
        assert generate_cases("kernel", 5, 0) == generate_cases("kernel", 9, 0)[:5]

    def test_unknown_suite_rejected(self):
        with pytest.raises(ValueError, match="unknown suite"):
            generate_cases("nope", 1, 0)

    def test_model_kinds_all_reachable(self):
        kinds = {case.kind for case in generate_cases("model", 60, 0)}
        assert kinds == set(MODEL_KINDS)


class TestBuildNetwork:
    def test_every_model_case_builds(self):
        for case in generate_cases("model", 30, 1):
            network = build_network(case)
            assert isinstance(network, DynamicGraph)
            network.at(0)

    def test_backend_cases_build_via_family(self):
        for case in generate_cases("backend", 10, 1):
            assert build_network(case).n == case.params["n"]

    def test_build_is_deterministic(self):
        case = generate_cases("model", 1, 5)[0]
        first = build_network(case)
        second = build_network(case)
        rounds = int(case.params.get("rounds", 1))
        for round_no in range(rounds):
            assert set(first.at(round_no).edges()) == set(
                second.at(round_no).edges()
            )

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="cannot build"):
            build_network(Case("model", "nope", 0, {}))


class TestShrinkCandidates:
    def test_candidates_are_strictly_different(self):
        case = Case("model", "arbitrary", 0, {"n": 6, "rounds": 4, "extra_edge_p": 0.5})
        for candidate in shrink_candidates(case):
            assert candidate.params != case.params

    def test_minimum_yields_nothing(self):
        minimum = Case(
            "model", "arbitrary", 0, {"n": 1, "rounds": 1, "extra_edge_p": 0.0}
        )
        assert not list(shrink_candidates(minimum))

    def test_kernel_minimum_is_fixed_point(self):
        assert not list(
            shrink_candidates(Case("kernel", "kernel-identities", 0, {"r": 0, "n": 1}))
        )

    def test_t_interval_clamp_keeps_rounds_at_least_t(self):
        case = Case(
            "model", "t-interval", 0, {"n": 5, "t": 3, "rounds": 6, "extra_edge_p": 0.0}
        )
        for candidate in shrink_candidates(case):
            assert candidate.params["rounds"] >= candidate.params["t"]

    def test_layers_list_shrinks(self):
        case = Case("model", "pd", 0, {"layers": [3, 2], "rounds": 1})
        layer_shrinks = [
            candidate.params["layers"]
            for candidate in shrink_candidates(case)
            if candidate.params["layers"] != [3, 2]
        ]
        assert [3] in layer_shrinks  # drop a layer
        assert [2, 2] in layer_shrinks  # shrink a layer's size

    def test_workload_drops_last_entry_only(self):
        case = Case(
            "runtime",
            "sweep-equivalence",
            0,
            {"workload": [["a", {}], ["b", {}]]},
        )
        workloads = [c.params["workload"] for c in shrink_candidates(case)]
        assert workloads == [[["a", {}]]]


class TestShrink:
    def test_reaches_global_minimum_when_everything_fails(self):
        case = Case(
            "model", "arbitrary", 0, {"n": 9, "rounds": 7, "extra_edge_p": 0.5}
        )
        shrunk = shrink(case, lambda c: True)
        assert shrunk.params == {"n": 1, "rounds": 1, "extra_edge_p": 0.0}

    def test_respects_the_predicate(self):
        case = Case("kernel", "kernel-identities", 0, {"r": 4, "n": 30})
        shrunk = shrink(case, lambda c: c.params["r"] >= 2)
        assert shrunk.params["r"] == 2
        assert shrunk.params["n"] == 1

    def test_passing_case_is_returned_unchanged(self):
        case = Case("kernel", "kernel-identities", 0, {"r": 3, "n": 10})
        assert shrink(case, lambda c: False) == case

    def test_budget_bounds_evaluations(self):
        calls = []

        def fails(candidate):
            calls.append(candidate)
            return True

        case = Case("kernel", "kernel-identities", 0, {"r": 5, "n": 40})
        shrink(case, fails, max_attempts=3)
        assert len(calls) <= 3
