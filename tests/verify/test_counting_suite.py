"""Tests for the counting verification suite (the zoo oracle)."""

from __future__ import annotations

from repro.verify import generate_cases, run_verify, shrink_candidates
from repro.verify.counting import case_population, check_counting_case
from repro.verify.strategies import COUNTING_KINDS, Case, _clamp


class TestCountingCaseGeneration:
    def test_deterministic_from_seed(self):
        first = generate_cases("counting", 10, master_seed=3)
        second = generate_cases("counting", 10, master_seed=3)
        assert first == second

    def test_cases_are_well_formed(self):
        for case in generate_cases("counting", 40, master_seed=1):
            assert case.suite == "counting"
            assert case.kind in COUNTING_KINDS
            assert case.params["family"] in ("pd", "t-interval", "markov")
            assert case_population(case) >= 2
            if case.kind == "kowalski-mosteiro":
                assert 1 <= case.params["supervisors"] <= case_population(
                    case
                )
            if case.kind in ("milani-mosteiro", "chakraborty-mm"):
                assert case.params["lanes"] >= 1


class TestCountingOracle:
    def test_history_tree_case_passes(self):
        case = Case(
            "counting",
            "diluna-viglietta",
            seed=13,
            params={"family": "t-interval", "n": 4},
        )
        assert check_counting_case(case) == []

    def test_supervised_case_passes(self):
        case = Case(
            "counting",
            "kowalski-mosteiro",
            seed=13,
            params={"family": "markov", "n": 4, "supervisors": 2},
        )
        assert check_counting_case(case) == []

    def test_drain_differential_case_passes(self):
        case = Case(
            "counting",
            "chakraborty-mm",
            seed=13,
            params={
                "family": "pd",
                "layers": [2, 1],
                "lanes": 2,
                "max_lane_nodes": 2,
            },
        )
        assert check_counting_case(case) == []


class TestCountingShrinkBounds:
    def test_n_never_shrinks_below_two(self):
        case = Case(
            "counting",
            "milani-mosteiro",
            seed=0,
            params={"family": "markov", "n": 6, "lanes": 2},
        )
        for candidate in shrink_candidates(case):
            # The markov builder needs n >= 2; a candidate below that
            # would crash the checker and fake a "smaller" violation.
            assert candidate.params["n"] >= 2

    def test_supervisors_clamped_to_population(self):
        case = Case(
            "counting",
            "kowalski-mosteiro",
            seed=0,
            params={"family": "t-interval", "n": 2, "supervisors": 5},
        )
        assert _clamp(case).params["supervisors"] == 2


class TestCountingHarness:
    def test_fuzz_run_passes(self, tmp_path):
        report = run_verify(
            fuzz=10, seed=0, suites=["counting"], fixtures_dir=tmp_path
        )
        assert report.passed
        # The counting divisor: 10 fuzz units draw 2 cases.
        assert report.suites["counting"].cases == 2
        assert not list(tmp_path.iterdir())
