"""Tests for the verification harness: fuzz, shrink, fixtures, self-test."""

from __future__ import annotations

import json

import pytest

from repro.obs.metrics import MetricsRegistry, use_registry
from repro.verify import (
    Case,
    mutation,
    replay_fixture,
    run_case,
    run_self_test,
    run_verify,
    shrink_candidates,
    write_fixture,
)


class TestRunVerify:
    def test_clean_tree_passes(self, tmp_path):
        report = run_verify(
            fuzz=5,
            seed=0,
            suites=["model", "kernel"],
            fixtures_dir=tmp_path,
        )
        assert report.passed
        assert report.total_cases == 10
        assert report.total_violations == 0
        assert not list(tmp_path.iterdir())

    def test_unknown_suite_rejected(self):
        with pytest.raises(ValueError, match="unknown suite"):
            run_verify(fuzz=1, suites=["nope"])

    def test_default_runs_all_suites_in_order(self, tmp_path):
        report = run_verify(fuzz=1, fixtures_dir=tmp_path)
        assert list(report.suites) == [
            "model",
            "kernel",
            "backend",
            "runtime",
            "counting",
        ]

    def test_counters_maintained(self, tmp_path):
        with use_registry(MetricsRegistry()) as registry:
            run_verify(fuzz=3, suites=["kernel"], fixtures_dir=tmp_path)
        assert registry.snapshot()["counters"]["verify.cases"] == 3

    def test_violation_is_shrunk_and_persisted(self, tmp_path):
        with mutation.armed("kernel-sign-flip"):
            report = run_verify(
                fuzz=2, seed=0, suites=["kernel"], fixtures_dir=tmp_path
            )
            assert not report.passed
            violation = report.suites["kernel"].violations[0]
            # Every kernel case fails under the mutant, so the greedy
            # shrinker must land on the lattice's global minimum.
            assert violation.shrunk.params == {"r": 0, "n": 1}
            assert violation.fixture is not None
            assert violation.fixture.exists()

    def test_no_shrink_keeps_original_case(self, tmp_path):
        with mutation.armed("kernel-sign-flip"):
            report = run_verify(
                fuzz=1,
                seed=0,
                suites=["kernel"],
                fixtures_dir=tmp_path,
                do_shrink=False,
            )
        violation = report.suites["kernel"].violations[0]
        assert violation.shrunk == violation.case

    def test_render_mentions_counterexample(self, tmp_path):
        with mutation.armed("kernel-sign-flip"):
            report = run_verify(
                fuzz=1, seed=0, suites=["kernel"], fixtures_dir=tmp_path
            )
        text = report.render()
        assert "FAIL" in text and "counterexample" in text


class TestRunCase:
    def test_checker_crash_becomes_violation(self):
        # A case the builder cannot even construct must not escape as
        # an exception: the crash is itself the reportable violation.
        case = Case("model", "pd", 0, {"layers": "broken", "rounds": 1})
        violations = run_case(case)
        assert violations
        assert "checker crashed" in violations[0]


class TestFixtures:
    def test_write_and_replay_roundtrip(self, tmp_path):
        case = Case("kernel", "kernel-identities", 9, {"r": 1, "n": 3})
        path = write_fixture(tmp_path, case, ["some violation"])
        payload = json.loads(path.read_text())
        assert payload["format"] == "repro-verify-fixture-v1"
        assert Case.from_dict(payload["case"]) == case
        assert replay_fixture(path) == []  # clean tree: bug not present

    def test_replay_reports_current_violations(self, tmp_path):
        case = Case("kernel", "kernel-identities", 9, {"r": 0, "n": 1})
        path = write_fixture(tmp_path, case, ["recorded violation"])
        with mutation.armed("kernel-sign-flip"):
            assert replay_fixture(path)


class TestSelfTest:
    def test_passes_and_persists_fixtures(self, tmp_path):
        assert run_self_test(seed=0, fixtures_dir=tmp_path) == []
        fixtures = list(tmp_path.glob("*.json"))
        assert fixtures
        # Minimality is part of the contract: each persisted
        # counterexample sits at the bottom of its shrink lattice.
        for path in fixtures:
            case = Case.from_dict(json.loads(path.read_text())["case"])
            assert not list(shrink_candidates(case))

    def test_tempdir_mode_leaves_no_files(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert run_self_test(seed=1) == []
        assert not list(tmp_path.iterdir())
