"""Tests for the invariant oracles (and the mutants they must catch)."""

from __future__ import annotations

import pytest

from repro.verify import mutation
from repro.verify.oracles import check_kernel_case, check_model_case
from repro.verify.strategies import Case, generate_cases


class TestModelOracle:
    def test_generated_cases_pass(self):
        for case in generate_cases("model", 20, 0):
            assert check_model_case(case) == []

    def test_self_loop_mutant_detected_everywhere(self):
        with mutation.armed("model-self-loop"):
            for case in generate_cases("model", 10, 0):
                violations = check_model_case(case)
                assert violations
                assert any("self-loop" in v for v in violations)

    def test_pd_contract_checked(self):
        case = Case(
            "model",
            "pd",
            3,
            {"layers": [2, 2], "rounds": 3, "extra_edge_p": 0.2, "intra_layer_p": 0.0},
        )
        assert check_model_case(case) == []

    def test_t_interval_contract_checked(self):
        case = Case(
            "model",
            "t-interval",
            5,
            {"n": 6, "t": 2, "rounds": 4, "extra_edge_p": 0.0},
        )
        assert check_model_case(case) == []


class TestKernelOracle:
    @pytest.mark.parametrize("r", range(6))
    def test_identities_hold(self, r):
        case = Case("kernel", "kernel-identities", 0, {"r": r, "n": 4})
        assert check_kernel_case(case) == []

    @pytest.mark.parametrize("n", [1, 4, 13, 40])
    def test_theorem1_bound_holds(self, n):
        case = Case("kernel", "kernel-identities", 0, {"r": 1, "n": n})
        assert check_kernel_case(case) == []

    def test_sign_flip_mutant_detected_for_every_r(self):
        with mutation.armed("kernel-sign-flip"):
            for r in range(4):
                case = Case("kernel", "kernel-identities", 0, {"r": r, "n": 2})
                violations = check_kernel_case(case)
                assert violations
                # The sign flip breaks Lemma 4's sum identities at least.
                assert any("Lemma 4" in v for v in violations)

    def test_mutant_breaks_matrix_identity_too(self):
        with mutation.armed("kernel-sign-flip"):
            case = Case("kernel", "kernel-identities", 0, {"r": 1, "n": 2})
            assert any("M_1" in v for v in check_kernel_case(case))


class TestMutationRegistry:
    def test_unknown_mutant_rejected(self):
        with pytest.raises(ValueError, match="unknown mutant"):
            with mutation.armed("nope"):
                pass

    def test_mutants_disarm_on_exit(self):
        with mutation.armed("kernel-sign-flip"):
            assert mutation.is_armed("kernel-sign-flip")
        assert not mutation.is_armed("kernel-sign-flip")

    def test_disarm_survives_exceptions(self):
        with pytest.raises(RuntimeError):
            with mutation.armed("model-self-loop"):
                raise RuntimeError("boom")
        assert not mutation.is_armed("model-self-loop")
