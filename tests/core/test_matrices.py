"""Tests for the explicit M_r matrices (equations (2) and (5))."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.lowerbound.matrices import (
    MAX_DENSE_ROUND,
    build_matrix,
    configuration_vector,
    n_columns,
    n_rows,
    observation_vector,
    row_connections,
    row_index,
)
from repro.core.states import all_histories
from repro.networks.multigraph import DynamicMultigraph

from tests.conftest import schedules_strategy

ONE, TWO, BOTH = frozenset({1}), frozenset({2}), frozenset({1, 2})

# Equation (2) of the paper.
PAPER_M0 = np.array(
    [
        [1, 0, 1],
        [0, 1, 1],
    ]
)

# Equation (5) of the paper.
PAPER_M1 = np.array(
    [
        [1, 1, 1, 0, 0, 0, 1, 1, 1],
        [0, 0, 0, 1, 1, 1, 1, 1, 1],
        [1, 0, 1, 0, 0, 0, 0, 0, 0],
        [0, 0, 0, 1, 0, 1, 0, 0, 0],
        [0, 0, 0, 0, 0, 0, 1, 0, 1],
        [0, 1, 1, 0, 0, 0, 0, 0, 0],
        [0, 0, 0, 0, 1, 1, 0, 0, 0],
        [0, 0, 0, 0, 0, 0, 0, 1, 1],
    ]
)


class TestDimensions:
    def test_columns(self):
        assert [n_columns(r) for r in range(4)] == [3, 9, 27, 81]

    def test_rows(self):
        assert [n_rows(r) for r in range(4)] == [2, 8, 26, 80]

    def test_rows_is_columns_minus_one(self):
        for r in range(8):
            assert n_rows(r) == n_columns(r) - 1

    def test_negative_round_rejected(self):
        with pytest.raises(ValueError):
            n_columns(-1)


class TestMatrixConstruction:
    def test_m0_matches_paper(self):
        assert np.array_equal(build_matrix(0), PAPER_M0)

    def test_m1_matches_paper(self):
        assert np.array_equal(build_matrix(1), PAPER_M1)

    def test_shape(self):
        for r in range(4):
            assert build_matrix(r).shape == (n_rows(r), n_columns(r))

    def test_entries_are_01(self):
        matrix = build_matrix(2)
        assert set(np.unique(matrix)) <= {0, 1}

    def test_trails_of_ones(self):
        # Row (j, prefix) introduced at round r' has exactly 2 * 3^(r-r')
        # ones (Section 4.2's "two trails of ones").
        r = 3
        matrix = build_matrix(r)
        for label, prefix in row_connections(r):
            row = matrix[row_index(label, prefix, r)]
            assert row.sum() == 2 * 3 ** (r - len(prefix))

    def test_dense_cap(self):
        with pytest.raises(ValueError, match="capped"):
            build_matrix(MAX_DENSE_ROUND + 1)

    def test_block_recursion(self):
        # M_r's first row block is M_{r-1} with each entry expanded into
        # a length-3 run (the proof structure of Lemma 2).
        previous, current = build_matrix(1), build_matrix(2)
        expanded = np.repeat(previous, 3, axis=1)
        assert np.array_equal(current[: previous.shape[0]], expanded)


class TestRowIndexing:
    def test_row_connections_order_round0(self):
        assert row_connections(0) == [(1, ()), (2, ())]

    def test_row_connections_order_round1(self):
        connections = row_connections(1)
        assert connections[:2] == [(1, ()), (2, ())]
        assert connections[2] == (1, (ONE,))
        assert connections[5] == (2, (ONE,))

    def test_row_index_consistency(self):
        for r in range(3):
            for expected, (label, prefix) in enumerate(row_connections(r)):
                assert row_index(label, prefix, r) == expected

    def test_row_index_validation(self):
        with pytest.raises(ValueError, match="no row"):
            row_index(1, (ONE, TWO), 1)
        with pytest.raises(ValueError, match="labels"):
            row_index(3, (), 1)


class TestVectors:
    def test_configuration_vector_roundtrip(self):
        counts = {
            (ONE, BOTH): 2,
            (BOTH, BOTH): 1,
        }
        vector = configuration_vector(counts, 1)
        assert vector.sum() == 3
        histories = list(all_histories(2, 2))
        assert vector[histories.index((ONE, BOTH))] == 2

    def test_configuration_vector_length_check(self):
        with pytest.raises(ValueError, match="length"):
            configuration_vector({(ONE,): 1}, 1)

    def test_observation_vector_requires_enough_rounds(self):
        multigraph = DynamicMultigraph(2, [[ONE]])
        observations = multigraph.observations(1)
        with pytest.raises(ValueError, match="rounds"):
            observation_vector(observations, 1)

    @given(schedules_strategy(max_nodes=6, min_rounds=1, max_rounds=3))
    @settings(max_examples=40)
    def test_fundamental_identity_m_equals_Ms(self, schedules):
        """The defining identity: m_r = M_r s_r for every real execution."""
        multigraph = DynamicMultigraph(2, schedules)
        r = multigraph.prefix_rounds - 1
        s = configuration_vector(multigraph.configuration(r + 1), r)
        m = observation_vector(multigraph.observations(r + 1), r)
        assert np.array_equal(build_matrix(r) @ s, m)
