"""Tests for JSON serialisation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings

from repro.analysis.registry import ExperimentResult, run_experiment
from repro.io import (
    load_json,
    multigraph_from_json,
    multigraph_to_json,
    observations_from_json,
    observations_to_json,
    result_to_json,
    save_json,
)
from repro.networks.multigraph import DynamicMultigraph

from tests.conftest import schedules_strategy


class TestMultigraphRoundtrip:
    @given(schedules_strategy(max_nodes=6, max_rounds=4))
    @settings(max_examples=30)
    def test_lossless(self, schedules):
        original = DynamicMultigraph(2, schedules, name="fuzz")
        restored = multigraph_from_json(multigraph_to_json(original))
        assert restored.k == original.k
        assert restored.n == original.n
        assert restored.extend == original.extend
        rounds = original.prefix_rounds
        assert restored.configuration(rounds) == original.configuration(rounds)

    def test_k3(self):
        original = DynamicMultigraph.random(
            3, 5, 3, np.random.default_rng(4), name="k3"
        )
        restored = multigraph_from_json(multigraph_to_json(original))
        assert restored.configuration(3) == original.configuration(3)

    def test_rejects_wrong_format(self):
        with pytest.raises(ValueError, match="not a multigraph"):
            multigraph_from_json({"format": "something-else"})

    def test_file_roundtrip(self, tmp_path):
        original = DynamicMultigraph.random(
            2, 4, 2, np.random.default_rng(1)
        )
        path = save_json(multigraph_to_json(original), tmp_path / "mg.json")
        restored = multigraph_from_json(load_json(path))
        assert restored.configuration(2) == original.configuration(2)


class TestObservationsRoundtrip:
    @given(schedules_strategy(max_nodes=6, max_rounds=3))
    @settings(max_examples=30)
    def test_lossless(self, schedules):
        multigraph = DynamicMultigraph(2, schedules)
        original = multigraph.observations(multigraph.prefix_rounds)
        restored = observations_from_json(observations_to_json(original))
        assert restored == original

    def test_rejects_wrong_format(self):
        with pytest.raises(ValueError, match="not an observations"):
            observations_from_json({"format": "nope"})


class TestResultSerialisation:
    def test_real_experiment_result(self, tmp_path):
        result = run_experiment("tab-star-pd1", sizes=(2, 5))
        document = result_to_json(result)
        assert document["experiment"] == "tab-star-pd1"
        assert document["passed"] is True
        assert len(document["rows"]) == 2
        # The document is actually JSON-encodable.
        save_json(document, tmp_path / "result.json")
        assert load_json(tmp_path / "result.json") == document

    def test_non_json_values_stringified(self):
        result = ExperimentResult(
            experiment="x",
            title="t",
            headers=["a"],
            rows=[{"a": frozenset({1})}],
            checks={},
        )
        document = result_to_json(result)
        assert isinstance(document["rows"][0]["a"], str)
