"""Tests for state histories and leader observations."""

from __future__ import annotations

from collections import Counter

import pytest
from hypothesis import given

from repro.core.states import (
    ObservationSequence,
    all_histories,
    all_label_sets,
    history_from_index,
    history_index,
    label_set,
    label_set_index,
    leader_observation,
    n_histories,
    n_label_sets,
    validate_label_set,
)
from repro.simulation.errors import ModelError

from tests.conftest import history_strategy


class TestLabelSets:
    def test_paper_order_for_k2(self):
        assert all_label_sets(2) == (
            frozenset({1}),
            frozenset({2}),
            frozenset({1, 2}),
        )

    def test_order_for_k3(self):
        sets = all_label_sets(3)
        assert len(sets) == 7
        assert sets[0] == frozenset({1})
        assert sets[2] == frozenset({3})
        assert sets[3] == frozenset({1, 2})
        assert sets[-1] == frozenset({1, 2, 3})

    def test_count(self):
        for k in range(1, 6):
            assert n_label_sets(k) == 2**k - 1
            assert len(all_label_sets(k)) == 2**k - 1

    def test_index_roundtrip(self):
        for k in (1, 2, 3):
            for index, labels in enumerate(all_label_sets(k)):
                assert label_set_index(labels, k) == index

    def test_invalid_label_set_index(self):
        with pytest.raises(ModelError):
            label_set_index(frozenset({9}), 2)

    def test_validate_rejects_empty(self):
        with pytest.raises(ModelError, match="non-empty"):
            validate_label_set(frozenset(), 2)

    def test_validate_rejects_out_of_range(self):
        with pytest.raises(ModelError, match="subset"):
            validate_label_set(frozenset({0}), 2)
        with pytest.raises(ModelError, match="subset"):
            validate_label_set(frozenset({3}), 2)

    def test_validate_coerces_iterables(self):
        assert validate_label_set({1, 2}, 2) == frozenset({1, 2})

    def test_label_set_builder(self):
        assert label_set(2, 1) == frozenset({1, 2})

    def test_k_must_be_positive(self):
        with pytest.raises(ValueError):
            all_label_sets(0)


class TestHistories:
    def test_lexicographic_order_k2(self):
        histories = list(all_histories(2, 2))
        assert histories[0] == (frozenset({1}), frozenset({1}))
        assert histories[1] == (frozenset({1}), frozenset({2}))
        assert histories[-1] == (frozenset({1, 2}), frozenset({1, 2}))
        assert len(histories) == 9

    def test_count(self):
        assert n_histories(2, 3) == 27
        assert n_histories(3, 2) == 49

    def test_index_matches_enumeration_order(self):
        for length in (1, 2, 3):
            for index, history in enumerate(all_histories(2, length)):
                assert history_index(history, 2) == index

    @given(history_strategy(k=2, max_length=4))
    def test_index_roundtrip_property(self, history):
        index = history_index(history, 2)
        assert history_from_index(index, 2, len(history)) == history

    @given(history_strategy(k=3, max_length=3))
    def test_index_roundtrip_k3(self, history):
        index = history_index(history, 3)
        assert history_from_index(index, 3, len(history)) == history

    def test_from_index_out_of_range(self):
        with pytest.raises(ValueError):
            history_from_index(9, 2, 1)

    def test_empty_history_has_index_zero(self):
        assert history_index((), 2) == 0
        assert history_from_index(0, 2, 0) == ()


class TestLeaderObservation:
    def test_one_entry_per_edge(self):
        observation = leader_observation(
            [frozenset({1, 2}), frozenset({2})],
            [(), ()],
        )
        assert observation == Counter({(1, ()): 1, (2, ()): 2})

    def test_histories_distinguish_entries(self):
        h1 = (frozenset({1}),)
        h2 = (frozenset({2}),)
        observation = leader_observation(
            [frozenset({1}), frozenset({1})], [h1, h2]
        )
        assert observation == Counter({(1, h1): 1, (1, h2): 1})


class TestObservationSequence:
    def test_append_and_access(self):
        seq = ObservationSequence(2)
        seq.append({(1, ()): 2, (2, ()): 1})
        assert seq.rounds == 1
        assert seq.count(0, 1, ()) == 2
        assert seq.count(0, 2, ()) == 1
        assert seq.count(0, 1, (frozenset({1}),)) == 0
        assert seq.edge_count(0) == 3

    def test_history_length_must_match_round(self):
        seq = ObservationSequence(2)
        with pytest.raises(ModelError, match="length"):
            seq.append({(1, (frozenset({1}),)): 1})

    def test_label_range_validated(self):
        seq = ObservationSequence(2)
        with pytest.raises(ModelError, match="label"):
            seq.append({(3, ()): 1})

    def test_negative_multiplicity_rejected(self):
        seq = ObservationSequence(2)
        with pytest.raises(ModelError, match="negative"):
            seq.append({(1, ()): -1})

    def test_equality(self):
        seq1 = ObservationSequence(2, [{(1, ()): 1}])
        seq2 = ObservationSequence(2, [{(1, ()): 1}])
        seq3 = ObservationSequence(2, [{(2, ()): 1}])
        assert seq1 == seq2
        assert seq1 != seq3

    def test_prefix(self):
        seq = ObservationSequence(2, [{(1, ()): 1}, {(1, (frozenset({1}),)): 1}])
        assert seq.prefix(1) == ObservationSequence(2, [{(1, ()): 1}])
        assert seq.prefix(1).rounds == 1

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            ObservationSequence(0)
