"""Tests for views, indistinguishability, and the naming problem."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.core.naming import (
    ViewNamingProcess,
    earliest_naming_round,
    name_by_views,
    naming_is_possible,
    run_view_naming,
)
from repro.core.views import (
    indistinguishable,
    symmetry_degree,
    view,
    view_classes,
    view_table,
)
from repro.networks.dynamic_graph import DynamicGraph
from repro.networks.generators.figures import paper_figure1
from repro.networks.generators.stars import star_network


def static(graph):
    return DynamicGraph(graph.number_of_nodes(), lambda r: graph)


class TestViews:
    def test_depth0_only_leader_flag(self):
        star = star_network(5)
        classes = view_classes(star, 0, leader=0)
        assert classes == [[0], [1, 2, 3, 4]]

    def test_no_leader_depth0_all_equal(self):
        star = star_network(4)
        assert view_classes(star, 0) == [[0, 1, 2, 3]]

    def test_star_spokes_never_separate(self):
        star = star_network(6)
        for depth in (1, 2, 5, 10):
            classes = view_classes(star, depth, leader=0)
            assert [1, 2, 3, 4, 5] in classes
        assert symmetry_degree(star, 10, leader=0) == 5

    def test_cycle_is_fully_symmetric_without_leader(self):
        cycle = static(nx.cycle_graph(6))
        assert symmetry_degree(cycle, 8) == 6

    def test_cycle_separates_with_leader(self):
        cycle = static(nx.cycle_graph(5))
        classes = view_classes(cycle, 3, leader=0)
        # Distance from the leader separates; the two nodes at each
        # distance stay mutually symmetric (reflection symmetry).
        assert [0] in classes
        assert [1, 4] in classes
        assert [2, 3] in classes

    def test_path_mirror_symmetry_without_leader(self):
        # An unrooted path has a reflection symmetry: endpoints (and
        # each mirrored pair) are forever indistinguishable.
        path = static(nx.path_graph(4))
        assert indistinguishable(path, 0, 3, 8)
        assert indistinguishable(path, 1, 2, 8)

    def test_path_separates_completely_with_offcentre_leader(self):
        path = static(nx.path_graph(4))
        depth = earliest_naming_round(path, leader=1)
        assert depth is not None
        classes = view_classes(path, depth, leader=1)
        assert all(len(members) == 1 for members in classes)

    def test_indistinguishable_pairwise(self):
        star = star_network(4)
        assert indistinguishable(star, 1, 2, 6, leader=0)
        assert not indistinguishable(star, 0, 1, 1, leader=0)

    def test_view_ids_consistent(self):
        star = star_network(4)
        assert view(star, 1, 3, leader=0) == view(star, 2, 3, leader=0)
        assert view(star, 0, 3, leader=0) != view(star, 1, 3, leader=0)

    def test_views_refine_over_depth(self):
        figure = paper_figure1()
        previous = 1
        for depth in range(5):
            classes = view_classes(figure.graph, depth, leader=0)
            assert len(classes) >= previous
            previous = len(classes)

    def test_dynamic_views_track_round_graphs(self):
        # Two nodes symmetric in round 0 but not round 1 separate at
        # depth 2.
        g0 = nx.Graph([(0, 1), (0, 2), (1, 2)])  # triangle: 1 ~ 2
        g1 = nx.Graph([(0, 1), (1, 2)])  # path: 1 is the middle
        graph = DynamicGraph.from_graphs([g0, g1])
        assert indistinguishable(graph, 1, 2, 1, leader=0)
        assert not indistinguishable(graph, 1, 2, 2, leader=0)

    def test_negative_depth_rejected(self):
        with pytest.raises(ValueError):
            view_table(star_network(3), -1)


class TestNaming:
    def test_star_naming_impossible(self):
        star = star_network(5)
        assert not naming_is_possible(star, 10, leader=0)
        assert earliest_naming_round(star, leader=0, max_depth=10) is None
        assert name_by_views(star, 10, leader=0) is None

    def test_two_node_star_namable(self):
        star = star_network(2)
        assert naming_is_possible(star, 0, leader=0)

    def test_path_naming(self):
        path = static(nx.path_graph(5))
        depth = earliest_naming_round(path, leader=1)
        names = name_by_views(path, depth, leader=1)
        assert sorted(names.values()) == list(range(5))

    def test_symmetric_path_not_namable_without_leader(self):
        path = static(nx.path_graph(5))
        assert earliest_naming_round(path, max_depth=8) is None

    def test_names_are_deterministic(self):
        path = static(nx.path_graph(4))
        depth = earliest_naming_round(path, leader=1)
        assert name_by_views(path, depth, leader=1) == name_by_views(
            path, depth, leader=1
        )


class TestEngineViewNaming:
    def test_partition_matches_graph_level(self):
        figure = paper_figure1()
        horizon = 3
        outputs = run_view_naming(figure.graph, horizon, leader=0)
        engine_partition = {}
        for node, output in outputs.items():
            engine_partition.setdefault(output, []).append(node)
        engine_classes = sorted(
            engine_partition.values(), key=lambda members: members[0]
        )
        assert engine_classes == view_classes(
            figure.graph, horizon, leader=0
        )

    def test_star_spokes_get_identical_names(self):
        outputs = run_view_naming(star_network(4), 3, leader=0)
        assert outputs[1] == outputs[2] == outputs[3]
        assert outputs[0] != outputs[1]

    def test_horizon_validation(self):
        with pytest.raises(ValueError):
            ViewNamingProcess(False, 0)
