"""Tests for the exact feasible-size interval solver.

The crucial properties, each checked both on worked examples and by
hypothesis fuzzing over random executions:

* the interval always contains the true size (soundness);
* the interval equals the brute-force feasible-size set exactly, and
  that set is contiguous (completeness + the combinatorial face of
  Lemma 2);
* witness extraction returns configurations that regenerate the observed
  leader state at any feasible size.
"""

from __future__ import annotations

from collections import Counter

import pytest
from hypothesis import given, settings

from repro.core.solver import (
    SizeInterval,
    feasible_configuration,
    feasible_size_interval,
    feasible_size_set_bruteforce,
)
from repro.core.states import ObservationSequence
from repro.networks.multigraph import DynamicMultigraph
from repro.simulation.errors import InfeasibleObservationError

from tests.conftest import schedules_strategy

ONE, TWO, BOTH = frozenset({1}), frozenset({2}), frozenset({1, 2})


class TestSizeInterval:
    def test_basic(self):
        interval = SizeInterval(2, 4)
        assert interval.width == 2
        assert not interval.is_unique
        assert 3 in interval
        assert 5 not in interval
        assert list(interval) == [2, 3, 4]

    def test_unique(self):
        assert SizeInterval(7, 7).is_unique

    def test_invalid(self):
        with pytest.raises(ValueError):
            SizeInterval(3, 2)
        with pytest.raises(ValueError):
            SizeInterval(-1, 2)


class TestWorkedExamples:
    def test_figure3_round0(self):
        # m_0 = [2, 2]: solutions range over sizes {2, 3, 4}.
        observations = ObservationSequence(2, [{(1, ()): 2, (2, ()): 2}])
        assert feasible_size_interval(observations) == SizeInterval(2, 4)

    def test_single_label_is_unique(self):
        # All edges labeled 1: every node must be a {1}-node.
        observations = ObservationSequence(2, [{(1, ()): 5}])
        assert feasible_size_interval(observations) == SizeInterval(5, 5)

    def test_leader_counts_small_networks_fast(self):
        # The paper: n <= 3 is countable at round 1 (2 rounds).
        multigraph = DynamicMultigraph(
            2, [[BOTH, BOTH], [BOTH, BOTH], [BOTH, BOTH]]
        )
        assert feasible_size_interval(multigraph.observations(1)).width > 0
        assert feasible_size_interval(
            multigraph.observations(2)
        ) == SizeInterval(3, 3)

    def test_requires_round(self):
        with pytest.raises(ValueError, match="at least one"):
            feasible_size_interval(ObservationSequence(2))

    def test_requires_k2(self):
        with pytest.raises(ValueError, match="k = 2"):
            feasible_size_interval(ObservationSequence(3, [{}]))

    def test_infeasible_observations_detected(self):
        # Round 0 says one {1}-edge; round 1 claims a node whose history
        # was {2} -- impossible.
        observations = ObservationSequence(
            2,
            [
                {(1, ()): 1},
                {(1, (TWO,)): 1},
            ],
        )
        with pytest.raises(InfeasibleObservationError):
            feasible_size_interval(observations)

    def test_zero_nodes(self):
        observations = ObservationSequence(2, [{}])
        assert feasible_size_interval(observations) == SizeInterval(0, 0)


class TestAgainstBruteForce:
    @given(schedules_strategy(max_nodes=6, max_rounds=3))
    @settings(max_examples=60, deadline=None)
    def test_interval_equals_bruteforce_set(self, schedules):
        multigraph = DynamicMultigraph(2, schedules)
        observations = multigraph.observations(multigraph.prefix_rounds)
        interval = feasible_size_interval(observations)
        sizes = feasible_size_set_bruteforce(observations)
        assert sizes == set(interval)

    @given(schedules_strategy(max_nodes=8, max_rounds=4))
    @settings(max_examples=60, deadline=None)
    def test_true_size_always_feasible(self, schedules):
        multigraph = DynamicMultigraph(2, schedules)
        for rounds in range(1, multigraph.prefix_rounds + 1):
            interval = feasible_size_interval(multigraph.observations(rounds))
            assert multigraph.n in interval


class TestWitnessExtraction:
    @given(schedules_strategy(max_nodes=6, max_rounds=3))
    @settings(max_examples=40, deadline=None)
    def test_witness_regenerates_observations(self, schedules):
        multigraph = DynamicMultigraph(2, schedules)
        rounds = multigraph.prefix_rounds
        observations = multigraph.observations(rounds)
        interval = feasible_size_interval(observations)
        for size in interval:
            witness = feasible_configuration(observations, size)
            assert sum(witness.values()) == size
            rebuilt = DynamicMultigraph.from_solution(2, witness)
            assert rebuilt.observations(rounds) == observations

    def test_default_size_is_lower_end(self):
        observations = ObservationSequence(2, [{(1, ()): 2, (2, ()): 2}])
        witness = feasible_configuration(observations)
        assert sum(witness.values()) == 2
        assert witness == Counter({(BOTH,): 2})

    def test_rejects_out_of_interval_size(self):
        observations = ObservationSequence(2, [{(1, ()): 2, (2, ()): 2}])
        with pytest.raises(InfeasibleObservationError, match="outside"):
            feasible_configuration(observations, 9)


class TestBruteForce:
    def test_matches_hand_computation(self):
        observations = ObservationSequence(2, [{(1, ()): 2, (2, ()): 1}])
        # x12 in {0, 1}: sizes 3 and 2.
        assert feasible_size_set_bruteforce(observations) == {2, 3}

    def test_max_size_filter(self):
        observations = ObservationSequence(2, [{(1, ()): 2, (2, ()): 2}])
        assert feasible_size_set_bruteforce(observations, max_size=3) == {2, 3}
