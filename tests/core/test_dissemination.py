"""Tests for k-token dissemination."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dissemination import (
    disseminate_by_flooding,
    disseminate_by_token_forwarding,
)
from repro.networks.generators.figures import paper_figure1
from repro.networks.generators.random_dynamic import RandomConnectedAdversary
from repro.networks.generators.stars import star_network
from repro.networks.properties import dynamic_diameter
from repro.simulation.errors import ModelError


class TestFloodingDissemination:
    def test_single_token_is_flooding(self):
        figure = paper_figure1()
        result = disseminate_by_flooding(figure.graph, {figure.v0: 0})
        assert result.rounds == 4  # the Figure 1 flood
        assert result.tokens == 1

    def test_completes_within_dynamic_diameter(self):
        network = RandomConnectedAdversary(12, seed=2).as_dynamic_graph()
        diameter = dynamic_diameter(network, start_rounds=2)
        result = disseminate_by_flooding(network, {0: 0, 5: 1, 9: 2})
        assert result.rounds <= diameter

    def test_duplicate_token_values_count_once(self):
        star = star_network(5)
        result = disseminate_by_flooding(star, {1: 7, 2: 7})
        assert result.tokens == 1
        assert result.rounds <= 2

    def test_empty_assignment_rejected(self):
        with pytest.raises(ModelError, match="at least one token"):
            disseminate_by_flooding(star_network(3), {})

    def test_out_of_range_holder_rejected(self):
        with pytest.raises(ModelError, match="outside"):
            disseminate_by_flooding(star_network(3), {9: 0})


class TestTokenForwarding:
    def test_runs_exactly_nk_rounds(self):
        star = star_network(6)
        result = disseminate_by_token_forwarding(star, {1: 10, 2: 20})
        assert result.rounds == 6 * 2
        assert result.tokens == 2

    def test_one_token_per_message(self):
        # messages <= rounds * n (each node sends at most one token per
        # round), strictly less than flooding's multiset volume.
        star = star_network(5)
        result = disseminate_by_token_forwarding(star, {1: 0, 2: 1, 3: 2})
        assert result.messages <= result.rounds * 5

    @given(
        st.integers(min_value=2, max_value=10),
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=15, deadline=None)
    def test_correct_on_random_dynamics(self, n, k, seed):
        k = min(k, n)
        network = RandomConnectedAdversary(n, seed=seed).as_dynamic_graph()
        rng = np.random.default_rng(seed)
        holders = rng.choice(n, size=k, replace=False)
        assignment = {int(node): token for token, node in enumerate(holders)}
        # disseminate_by_token_forwarding raises if any node misses a
        # token -- completing without an exception is the correctness
        # assertion.
        result = disseminate_by_token_forwarding(network, assignment)
        assert result.rounds == n * k

    def test_flooding_beats_forwarding(self):
        network = RandomConnectedAdversary(10, seed=1).as_dynamic_graph()
        assignment = {0: 0, 3: 1}
        flooding = disseminate_by_flooding(network, assignment)
        forwarding = disseminate_by_token_forwarding(network, assignment)
        assert flooding.rounds < forwarding.rounds
