"""Tests for the counting-algorithm zoo (the published upper bounds).

Every algorithm's contract is exact: on an ``n``-node dynamic network
it must output ``count == n``, no earlier than the Theorem 1 horizon.
The drain algorithms additionally ship a vectorized fast backend whose
outcomes and ``engine.*`` counters must be byte-identical to the
object engine, including chunked lane streaming and fused batches.
"""

from __future__ import annotations

import networkx as nx
import pytest

from repro.core.counting.diluna_viglietta import count_diluna_viglietta
from repro.core.counting.drain import (
    count_chakraborty_mm,
    count_chakraborty_mm_batch,
    count_milani_mosteiro,
    count_milani_mosteiro_batch,
)
from repro.core.counting.kowalski_mosteiro import count_kowalski_mosteiro
from repro.core.lowerbound.bounds import theorem1_bound
from repro.networks.dynamic_graph import DynamicGraph
from repro.networks.generators.markov import edge_markov_network
from repro.networks.generators.pd import random_pd_network
from repro.networks.generators.random_dynamic import RandomConnectedAdversary
from repro.networks.generators.t_interval import t_interval_network
from repro.obs.metrics import MetricsRegistry, use_registry

ENGINE_COUNTERS = (
    "engine.runs",
    "engine.rounds",
    "engine.graphs",
    "engine.messages_sent",
    "engine.messages_delivered",
)


def static_network(graph: nx.Graph, name: str) -> DynamicGraph:
    return DynamicGraph(graph.number_of_nodes(), lambda _r: graph, name=name)


def random_network(n: int, seed: int) -> DynamicGraph:
    return RandomConnectedAdversary(n, seed=seed).as_dynamic_graph()


def outcome_key(outcome):
    return (
        outcome.count,
        outcome.output_round,
        outcome.rounds,
        outcome.algorithm,
        outcome.detail,
    )


class TestHistoryTreeAlgorithms:
    @pytest.mark.parametrize("n", [1, 2, 3, 5, 8])
    def test_dv_counts_random_networks(self, n):
        outcome = count_diluna_viglietta(random_network(n, seed=n))
        assert outcome.count == n
        assert outcome.output_round >= theorem1_bound(n)
        assert outcome.algorithm == "diluna-viglietta"

    @pytest.mark.parametrize("family", ["markov", "t-interval"])
    @pytest.mark.parametrize("n", [3, 6])
    def test_dv_counts_stochastic_families(self, family, n):
        if family == "markov":
            network = edge_markov_network(n, seed=7)
        else:
            network = t_interval_network(n, 2, seed=7)
        assert count_diluna_viglietta(network).count == n

    def test_dv_counts_pd_network(self):
        network, _layers = random_pd_network([3, 2], seed=11)
        assert count_diluna_viglietta(network).count == network.n

    @pytest.mark.parametrize("n", [2, 4, 6])
    def test_km_with_two_supervisors(self, n):
        outcome = count_kowalski_mosteiro(
            random_network(n, seed=n + 1), supervisors=2
        )
        assert outcome.count == n
        assert outcome.detail["supervisors"] == 2

    @pytest.mark.parametrize("n", [3, 5, 6])
    def test_km_all_supervisors_on_symmetric_cycle(self, n):
        # Every node marked on a vertex-transitive graph: the fully
        # leaderless case a unique-leader algorithm cannot express.
        network = static_network(nx.cycle_graph(n), f"cycle-{n}")
        outcome = count_kowalski_mosteiro(network, supervisors=n)
        assert outcome.count == n
        assert outcome.detail["supervisors"] == n
        # Symmetric start => all nodes decide in the same round.
        assert outcome.detail["deciders"] == n


class TestDrainAlgorithms:
    COUNTERS = {
        "milani-mosteiro": count_milani_mosteiro,
        "chakraborty-milani-mosteiro": count_chakraborty_mm,
    }

    @pytest.mark.parametrize("algorithm", sorted(COUNTERS))
    @pytest.mark.parametrize("n", [1, 2, 4, 6])
    def test_counts_random_networks(self, algorithm, n):
        outcome = self.COUNTERS[algorithm](random_network(n, seed=n))
        assert outcome.count == n
        assert outcome.output_round >= theorem1_bound(n)
        assert outcome.algorithm == algorithm

    @pytest.mark.parametrize("algorithm", sorted(COUNTERS))
    @pytest.mark.parametrize(
        "graph_name", ["cycle", "path", "star"]
    )
    def test_counts_static_topologies(self, algorithm, graph_name):
        n = 5
        graph = {
            "cycle": nx.cycle_graph,
            "path": nx.path_graph,
            "star": lambda k: nx.star_graph(k - 1),
        }[graph_name](n)
        outcome = self.COUNTERS[algorithm](
            static_network(graph, f"{graph_name}-{n}")
        )
        assert outcome.count == n

    @pytest.mark.parametrize("algorithm", sorted(COUNTERS))
    def test_counts_stochastic_families(self, algorithm):
        count = self.COUNTERS[algorithm]
        assert count(edge_markov_network(5, seed=3)).count == 5
        assert count(t_interval_network(5, 3, seed=3)).count == 5

    def test_mm_doubles_cmm_increments(self):
        network = random_network(6, seed=2)
        mm = count_milani_mosteiro(network)
        cmm = count_chakraborty_mm(random_network(6, seed=2))
        # MM's accepted candidate is a power of two; CMM's is the
        # smallest candidate its certificate accepts.
        k = mm.detail["candidate"]
        assert k & (k - 1) == 0
        assert cmm.detail["candidate"] <= k


class TestDrainBackendEquivalence:
    BATCHES = {
        "milani-mosteiro": (count_milani_mosteiro, count_milani_mosteiro_batch),
        "chakraborty-milani-mosteiro": (
            count_chakraborty_mm,
            count_chakraborty_mm_batch,
        ),
    }

    def _run(self, fn, *args, **kwargs):
        registry = MetricsRegistry()
        with use_registry(registry):
            result = fn(*args, **kwargs)
        snapshot = registry.snapshot()["counters"]
        counters = {name: snapshot.get(name, 0) for name in ENGINE_COUNTERS}
        return result, counters

    @pytest.mark.parametrize("algorithm", sorted(BATCHES))
    @pytest.mark.parametrize("n", [2, 5])
    def test_object_equals_fast(self, algorithm, n):
        single, _batch = self.BATCHES[algorithm]
        obj, obj_counters = self._run(
            single, random_network(n, seed=9), backend="object"
        )
        fast, fast_counters = self._run(
            single, random_network(n, seed=9), backend="fast"
        )
        assert outcome_key(obj) == outcome_key(fast)
        assert obj_counters == fast_counters

    @pytest.mark.parametrize("algorithm", sorted(BATCHES))
    def test_chunked_lanes_match_object(self, algorithm):
        single, _batch = self.BATCHES[algorithm]
        obj, obj_counters = self._run(
            single, random_network(5, seed=4), backend="object"
        )
        fast, fast_counters = self._run(
            single,
            random_network(5, seed=4),
            backend="fast",
            max_lane_nodes=2,
        )
        assert outcome_key(obj) == outcome_key(fast)
        assert obj_counters == fast_counters

    @pytest.mark.parametrize("algorithm", sorted(BATCHES))
    def test_batch_equals_singles(self, algorithm):
        single, batch = self.BATCHES[algorithm]
        sizes = [2, 5, 3]
        singles = [
            single(random_network(n, seed=20 + n), backend="fast")
            for n in sizes
        ]
        batched = batch(
            [random_network(n, seed=20 + n) for n in sizes],
            max_lane_nodes=4,
        )
        assert [outcome_key(o) for o in batched] == [
            outcome_key(o) for o in singles
        ]
