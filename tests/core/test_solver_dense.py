"""Cross-validation of the tree solver against the dense reference solver.

The two implementations share no code beyond the matrix builders, so
their agreement on fuzzed executions is strong evidence both are
correct.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.core.solver import feasible_size_interval
from repro.core.solver_dense import feasible_size_interval_dense
from repro.core.states import ObservationSequence
from repro.networks.multigraph import DynamicMultigraph
from repro.simulation.errors import InfeasibleObservationError

from tests.conftest import schedules_strategy

ONE, TWO, BOTH = frozenset({1}), frozenset({2}), frozenset({1, 2})


class TestDenseSolver:
    def test_figure3_interval(self):
        observations = ObservationSequence(2, [{(1, ()): 2, (2, ()): 2}])
        assert feasible_size_interval_dense(observations).lo == 2
        assert feasible_size_interval_dense(observations).hi == 4

    def test_unique_case(self):
        observations = ObservationSequence(2, [{(1, ()): 5}])
        interval = feasible_size_interval_dense(observations)
        assert (interval.lo, interval.hi) == (5, 5)

    def test_infeasible_detected(self):
        observations = ObservationSequence(
            2, [{(1, ()): 1}, {(1, (TWO,)): 1}]
        )
        with pytest.raises(InfeasibleObservationError):
            feasible_size_interval_dense(observations)

    def test_round_cap(self):
        multigraph = DynamicMultigraph(2, [[ONE] * 9])
        observations = multigraph.observations(9)
        with pytest.raises(ValueError, match="dense"):
            feasible_size_interval_dense(observations)

    def test_requires_k2(self):
        with pytest.raises(ValueError):
            feasible_size_interval_dense(ObservationSequence(3, [{}]))

    @given(schedules_strategy(max_nodes=7, min_rounds=1, max_rounds=3))
    @settings(max_examples=80, deadline=None)
    def test_agrees_with_tree_solver(self, schedules):
        multigraph = DynamicMultigraph(2, schedules)
        for rounds in range(1, multigraph.prefix_rounds + 1):
            observations = multigraph.observations(rounds)
            assert feasible_size_interval_dense(
                observations
            ) == feasible_size_interval(observations)

    @given(schedules_strategy(max_nodes=10, min_rounds=4, max_rounds=4))
    @settings(max_examples=15, deadline=None)
    def test_agrees_at_round_3(self, schedules):
        multigraph = DynamicMultigraph(2, schedules)
        observations = multigraph.observations(4)
        assert feasible_size_interval_dense(
            observations
        ) == feasible_size_interval(observations)
