"""Tests for the counting algorithms."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversaries.worst_case import (
    max_ambiguity_multigraph,
    worst_case_pd2_network,
)
from repro.core.counting.base import CountingOutcome
from repro.core.counting.chain import count_chain_pd2
from repro.core.counting.degree_oracle import count_pd2_with_degree_oracle
from repro.core.counting.flooding import flood_time_via_protocol
from repro.core.counting.gossip import gossip_size_estimates
from repro.core.counting.optimal import count_mdbl2, count_mdbl2_abstract
from repro.core.counting.star import count_star
from repro.core.counting.token_ids import count_with_ids
from repro.core.lowerbound.bounds import corollary1_bound, rounds_to_count
from repro.networks.generators.figures import paper_figure1
from repro.networks.generators.pd import random_pd_network
from repro.networks.generators.random_dynamic import RandomConnectedAdversary
from repro.networks.generators.stars import star_network
from repro.networks.multigraph import DynamicMultigraph
from repro.networks.properties import dynamic_diameter, flood_completion_time

from tests.conftest import schedules_strategy


class TestCountingOutcome:
    def test_validation(self):
        with pytest.raises(ValueError):
            CountingOutcome(count=-1, output_round=0, rounds=1, algorithm="x")
        with pytest.raises(ValueError):
            CountingOutcome(count=1, output_round=3, rounds=1, algorithm="x")


class TestOptimalCounter:
    @given(schedules_strategy(max_nodes=7, max_rounds=3))
    @settings(max_examples=40, deadline=None)
    def test_abstract_is_always_correct(self, schedules):
        multigraph = DynamicMultigraph(2, schedules)
        outcome = count_mdbl2_abstract(multigraph)
        assert outcome.count == multigraph.n

    @given(schedules_strategy(max_nodes=5, max_rounds=2))
    @settings(max_examples=25, deadline=None)
    def test_engine_path_agrees_with_abstract(self, schedules):
        multigraph = DynamicMultigraph(2, schedules)
        engine_outcome = count_mdbl2(multigraph)
        abstract_outcome = count_mdbl2_abstract(multigraph)
        assert engine_outcome.count == abstract_outcome.count
        assert engine_outcome.rounds == abstract_outcome.rounds

    @pytest.mark.parametrize("n", [1, 2, 4, 13, 40, 121])
    def test_worst_case_matches_theory(self, n):
        outcome = count_mdbl2_abstract(max_ambiguity_multigraph(n))
        assert outcome.count == n
        assert outcome.rounds == rounds_to_count(n)

    def test_interval_history_is_monotone(self):
        outcome = count_mdbl2_abstract(max_ambiguity_multigraph(40))
        widths = [interval.width for interval in outcome.detail["intervals"]]
        assert widths == sorted(widths, reverse=True)
        assert widths[-1] == 0

    def test_rejects_k3(self):
        multigraph = DynamicMultigraph(3, [[frozenset({3})]])
        with pytest.raises(ValueError):
            count_mdbl2_abstract(multigraph)
        with pytest.raises(ValueError):
            count_mdbl2(multigraph)

    def test_single_node(self):
        multigraph = DynamicMultigraph(2, [[frozenset({1})]])
        outcome = count_mdbl2_abstract(multigraph)
        assert outcome.count == 1
        assert outcome.rounds <= 2


class TestStarCounter:
    @pytest.mark.parametrize("n", [2, 3, 10, 100])
    def test_exact_in_one_round(self, n):
        outcome = count_star(n)
        assert outcome.count == n
        assert outcome.rounds == 1

    def test_non_default_leader(self):
        outcome = count_star(7, leader=3)
        assert outcome.count == 7

    def test_custom_network(self):
        outcome = count_star(5, network=star_network(5))
        assert outcome.count == 5

    def test_too_small(self):
        with pytest.raises(ValueError):
            count_star(1)


class TestDegreeOracleCounter:
    @pytest.mark.parametrize("n", [1, 4, 13, 40])
    def test_exact_on_worst_case_networks(self, n):
        network, layout = worst_case_pd2_network(n)
        outcome = count_pd2_with_degree_oracle(network)
        assert outcome.count == layout.n
        assert outcome.rounds == 3

    def test_exact_on_random_restricted_pd2(self):
        network, layers = random_pd_network(
            [5, 9], seed=4, intra_layer_p=0.0, extra_edge_p=0.3
        )
        outcome = count_pd2_with_degree_oracle(network)
        assert outcome.count == network.n

    def test_star_degenerate_case(self):
        # A star is a restricted PD_2 network with empty V2.
        outcome = count_pd2_with_degree_oracle(star_network(8))
        assert outcome.count == 8

    @given(st.integers(min_value=0, max_value=2**31), st.integers(2, 8), st.integers(1, 12))
    @settings(max_examples=20, deadline=None)
    def test_exact_on_fuzzed_pd2(self, seed, v1, v2):
        network, _layers = random_pd_network(
            [v1, v2], seed=seed, intra_layer_p=0.0
        )
        assert count_pd2_with_degree_oracle(network).count == network.n


class TestTokenIdsCounter:
    def test_counts_in_dynamic_diameter_rounds(self):
        figure = paper_figure1()
        d = dynamic_diameter(figure.graph, start_rounds=3)
        outcome = count_with_ids(figure.graph, d)
        assert outcome.count == figure.graph.n
        assert outcome.rounds == d

    @pytest.mark.parametrize("n", [4, 13, 40])
    def test_counts_worst_case_networks(self, n):
        network, layout = worst_case_pd2_network(n)
        d = dynamic_diameter(network, start_rounds=2)
        outcome = count_with_ids(network, d)
        assert outcome.count == layout.n

    def test_insufficient_horizon_undercounts(self):
        # With a horizon below D the flood has not completed: the
        # baseline's correctness genuinely depends on knowing D.
        import networkx as nx

        from repro.networks.dynamic_graph import DynamicGraph

        path = DynamicGraph(6, lambda r: nx.path_graph(6))
        outcome = count_with_ids(path, 2)
        assert outcome.count < 6

    def test_invalid_horizon(self):
        with pytest.raises(ValueError):
            count_with_ids(star_network(3), 0)


class TestGossip:
    def test_converges_on_fair_adversary(self):
        n = 32
        adversary = RandomConnectedAdversary(n, seed=5)
        estimates = gossip_size_estimates(adversary, n, 50)
        assert len(estimates) == 50
        assert abs(estimates[-1] - n) / n < 0.02

    def test_estimates_improve(self):
        n = 64
        adversary = RandomConnectedAdversary(n, seed=9)
        estimates = gossip_size_estimates(adversary, n, 60)
        late_error = abs(estimates[-1] - n)
        early_error = abs(estimates[5] - n)
        assert late_error <= early_error

    def test_mass_never_lost(self):
        # The leader's estimate is finite from round 1 on a star.
        estimates = gossip_size_estimates(star_network(10), 10, 10)
        assert all(np.isfinite(estimates[1:]))


class TestFloodingProtocol:
    @pytest.mark.parametrize("source", [0, 1, 3, 5])
    def test_agrees_with_graph_level(self, source):
        figure = paper_figure1()
        assert flood_time_via_protocol(figure.graph, source) == (
            flood_completion_time(figure.graph, source, 0)
        )

    def test_star(self):
        assert flood_time_via_protocol(star_network(5), 0) == 1
        assert flood_time_via_protocol(star_network(5), 2) == 2


class TestChainCounter:
    @pytest.mark.parametrize("n,chain_length", [(4, 0), (4, 3), (13, 2)])
    def test_matches_corollary_bound(self, n, chain_length):
        core = max_ambiguity_multigraph(n)
        outcome = count_chain_pd2(core, chain_length)
        assert outcome.count == n
        assert outcome.rounds == corollary1_bound(n, chain_length)

    @given(schedules_strategy(max_nodes=5, max_rounds=2))
    @settings(max_examples=15, deadline=None)
    def test_correct_on_fuzzed_cores(self, schedules):
        multigraph = DynamicMultigraph(2, schedules)
        outcome = count_chain_pd2(multigraph, 2)
        assert outcome.count == multigraph.n
