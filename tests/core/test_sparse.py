"""Tests for the sparse M_r backend (construction, kernel, rank)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.lowerbound.kernel import (
    closed_form_kernel,
    recursive_kernel,
    sum_negative,
    sum_positive,
)
from repro.core.lowerbound.matrices import (
    MAX_DENSE_ROUND,
    build_matrix,
    n_columns,
    n_rows,
    observation_vector,
)
from repro.core.lowerbound.sparse import (
    MAX_SPARSE_ROUND,
    build_sparse_matrix,
    sparse_nnz,
    sparse_nullspace_dimension,
    sparse_observation_vector,
    sparse_rank,
    verify_in_kernel_sparse,
)
from repro.core.solver import feasible_size_interval
from repro.core.solver_dense import (
    feasible_size_interval_dense,
    feasible_size_interval_sparse,
)
from repro.networks.multigraph import DynamicMultigraph

from tests.conftest import schedules_strategy

# The raised horizon of this backend; well past MAX_DENSE_ROUND = 6.
HORIZON = 10


class TestSparseDenseParity:
    @pytest.mark.parametrize("r", range(MAX_DENSE_ROUND + 1))
    def test_equals_dense_entry_for_entry(self, r):
        """The ISSUE's parity property: sparse M_r == dense M_r, all r <= 6."""
        assert np.array_equal(
            build_sparse_matrix(r).toarray(), build_matrix(r)
        )

    def test_shape_and_nnz(self):
        for r in range(HORIZON + 1):
            matrix = build_sparse_matrix(r)
            assert matrix.shape == (n_rows(r), n_columns(r))
            assert matrix.nnz == sparse_nnz(r) == 4 * (r + 1) * 3**r

    def test_entries_are_01(self):
        matrix = build_sparse_matrix(4)
        assert set(np.unique(matrix.data)) == {1}

    def test_round_validation(self):
        with pytest.raises(ValueError, match="numbered from 0"):
            build_sparse_matrix(-1)
        with pytest.raises(ValueError, match="capped"):
            build_sparse_matrix(MAX_SPARSE_ROUND + 1)

    def test_horizon_past_dense_cap(self):
        assert MAX_SPARSE_ROUND >= HORIZON > MAX_DENSE_ROUND


class TestSparseKernel:
    @pytest.mark.parametrize("r", range(HORIZON + 1))
    def test_closed_form_kernel_annihilated(self, r):
        """M_r k_r = 0 exactly, up to the raised horizon."""
        assert verify_in_kernel_sparse(r)

    @pytest.mark.parametrize("r", range(HORIZON + 1))
    def test_kernel_matches_lemma3_recursion(self, r):
        assert np.array_equal(closed_form_kernel(r), recursive_kernel(r))

    @pytest.mark.parametrize("r", range(HORIZON + 1))
    def test_lemma4_sums_at_horizon(self, r):
        kernel = closed_form_kernel(r)
        pos = int(kernel[kernel > 0].sum())
        neg = int(-kernel[kernel < 0].sum())
        assert pos - neg == 1  # sum k_r = 1
        assert neg == sum_negative(r) == (3 ** (r + 1) - 1) // 2
        assert pos == sum_positive(r)


class TestSparseRank:
    @pytest.mark.parametrize("r", range(5))
    def test_matches_dense_certificate(self, r):
        assert sparse_rank(r) == n_rows(r)

    @pytest.mark.parametrize("r", [7, HORIZON])
    def test_full_row_rank_past_dense_cap(self, r):
        assert sparse_rank(r) == n_rows(r)

    @pytest.mark.parametrize("r", [3, 8])
    def test_nullity_is_one(self, r):
        assert sparse_nullspace_dimension(r) == 1

    def test_round_validation(self):
        with pytest.raises(ValueError, match="numbered from 0"):
            sparse_rank(-1)


class TestSparseVectors:
    @given(schedules_strategy(max_nodes=6, min_rounds=1, max_rounds=3))
    @settings(max_examples=40)
    def test_observation_vector_matches_dense(self, schedules):
        multigraph = DynamicMultigraph(2, schedules)
        r = multigraph.prefix_rounds - 1
        observations = multigraph.observations(r + 1)
        assert np.array_equal(
            sparse_observation_vector(observations, r),
            observation_vector(observations, r),
        )

    @given(schedules_strategy(max_nodes=5, min_rounds=1, max_rounds=3))
    @settings(max_examples=30)
    def test_fundamental_identity_sparse(self, schedules):
        """m_r = M_r s_r holds through the sparse matrix too."""
        from repro.core.lowerbound.matrices import configuration_vector

        multigraph = DynamicMultigraph(2, schedules)
        r = multigraph.prefix_rounds - 1
        s = configuration_vector(multigraph.configuration(r + 1), r)
        m = sparse_observation_vector(multigraph.observations(r + 1), r)
        assert np.array_equal(build_sparse_matrix(r) @ s, m)

    def test_requires_enough_rounds(self):
        multigraph = DynamicMultigraph(2, [[frozenset({1})]])
        with pytest.raises(ValueError, match="rounds"):
            sparse_observation_vector(multigraph.observations(1), 1)


class TestSparseSolver:
    @given(schedules_strategy(max_nodes=6, min_rounds=1, max_rounds=3))
    @settings(max_examples=25, deadline=None)
    def test_agrees_with_tree_and_dense_solvers(self, schedules):
        multigraph = DynamicMultigraph(2, schedules)
        observations = multigraph.observations(multigraph.prefix_rounds)
        tree = feasible_size_interval(observations)
        dense = feasible_size_interval_dense(observations)
        sparse = feasible_size_interval_sparse(observations)
        assert (sparse.lo, sparse.hi) == (dense.lo, dense.hi)
        assert (sparse.lo, sparse.hi) == (tree.lo, tree.hi)

    def test_works_past_dense_cap(self):
        # A round-8 execution: 9 observed rounds, dense path impossible.
        from repro.adversaries.worst_case import max_ambiguity_multigraph

        n = 30
        multigraph = max_ambiguity_multigraph(n)
        observations = multigraph.observations(MAX_DENSE_ROUND + 3)
        with pytest.raises(ValueError, match="dense"):
            feasible_size_interval_dense(observations)
        tree = feasible_size_interval(observations)
        sparse = feasible_size_interval_sparse(observations)
        assert (sparse.lo, sparse.hi) == (tree.lo, tree.hi)
