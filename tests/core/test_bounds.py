"""Tests for the closed-form round bounds."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.lowerbound.bounds import (
    ambiguity_horizon,
    corollary1_bound,
    ilog3,
    min_output_round,
    min_sum_negative,
    rounds_to_count,
    theorem1_bound,
)


class TestIlog3:
    def test_small_values(self):
        assert ilog3(1) == 0
        assert ilog3(2) == 0
        assert ilog3(3) == 1
        assert ilog3(8) == 1
        assert ilog3(9) == 2
        assert ilog3(26) == 2
        assert ilog3(27) == 3

    @given(st.integers(min_value=1, max_value=10**12))
    def test_matches_float_log(self, x):
        result = ilog3(x)
        assert 3**result <= x < 3 ** (result + 1)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ilog3(0)


class TestAmbiguityHorizon:
    def test_thresholds(self):
        # Horizon jumps exactly at n = (3^(r+1) - 1) / 2: 1, 4, 13, 40, ...
        assert ambiguity_horizon(1) == 0
        assert ambiguity_horizon(3) == 0
        assert ambiguity_horizon(4) == 1
        assert ambiguity_horizon(12) == 1
        assert ambiguity_horizon(13) == 2
        assert ambiguity_horizon(39) == 2
        assert ambiguity_horizon(40) == 3
        assert ambiguity_horizon(121) == 4

    @given(st.integers(min_value=1, max_value=10**9))
    def test_definition(self, n):
        horizon = ambiguity_horizon(n)
        assert min_sum_negative(horizon) <= n
        assert min_sum_negative(horizon + 1) > n

    @given(st.integers(min_value=1, max_value=10**9))
    def test_equals_theorem1_formula(self, n):
        assert ambiguity_horizon(n) == theorem1_bound(n)
        # theorem1_bound is the exact-integer form of floor(log3(2n+1)) - 1.
        bound = theorem1_bound(n)
        assert 3 ** (bound + 1) <= 2 * n + 1 < 3 ** (bound + 2)

    def test_rejects_empty_network(self):
        with pytest.raises(ValueError):
            ambiguity_horizon(0)


class TestDerivedBounds:
    @given(st.integers(min_value=1, max_value=10**6))
    def test_ordering(self, n):
        assert min_output_round(n) == ambiguity_horizon(n) + 1
        assert rounds_to_count(n) == ambiguity_horizon(n) + 2

    def test_logarithmic_growth(self):
        assert rounds_to_count(4) == 3
        assert rounds_to_count(40) == 5
        assert rounds_to_count(400) == 7
        assert rounds_to_count(4000) == 9

    def test_corollary_bound(self):
        assert corollary1_bound(4, 0) == rounds_to_count(4) + 1
        assert corollary1_bound(4, 5) == rounds_to_count(4) + 6

    def test_corollary_rejects_negative_chain(self):
        with pytest.raises(ValueError):
            corollary1_bound(4, -1)


class TestMinSumNegative:
    def test_values(self):
        assert [min_sum_negative(r) for r in range(5)] == [1, 4, 13, 40, 121]

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            min_sum_negative(-1)
