"""Tests for the general-k matrices, kernels, and set solver."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.lowerbound.general import (
    embedded_k2_kernel,
    general_matrix,
    general_n_columns,
    general_n_rows,
    general_nullity,
    general_nullity_closed_form,
    min_negative_mass,
    product_kernel_vector,
)
from repro.core.lowerbound.bounds import min_sum_negative
from repro.core.lowerbound.matrices import build_matrix
from repro.core.solver import feasible_size_interval
from repro.core.solver_general import count_mdblk_abstract, feasible_sizes_general
from repro.core.states import ObservationSequence
from repro.networks.multigraph import DynamicMultigraph
from repro.simulation.errors import InfeasibleObservationError

from tests.conftest import schedules_strategy


class TestGeneralMatrix:
    def test_dimensions(self):
        assert general_n_columns(3, 1) == 49
        assert general_n_rows(3, 1) == 24
        assert general_n_columns(2, 2) == 27
        assert general_n_rows(2, 2) == 26

    @pytest.mark.parametrize("r", range(3))
    def test_k2_matches_paper_construction(self, r):
        assert np.array_equal(general_matrix(2, r), build_matrix(r))

    def test_row_sums(self):
        # Row (j, prefix) at round r' covers 2^(k-1) label sets per free
        # round position: total ones = 2^(k-1) * (2^k - 1)^(r - r').
        k, r = 3, 1
        matrix = general_matrix(k, r)
        round0_rows = matrix[:3]
        assert set(round0_rows.sum(axis=1)) == {4 * 7}
        round1_rows = matrix[3:]
        assert set(round1_rows.sum(axis=1)) == {4}

    def test_size_cap(self):
        with pytest.raises(ValueError, match="cap"):
            general_matrix(4, 3)

    def test_validation(self):
        with pytest.raises(ValueError):
            general_matrix(0, 0)
        with pytest.raises(ValueError):
            general_n_columns(2, -1)


class TestGeneralKernels:
    @pytest.mark.parametrize("k,r", [(2, 0), (2, 1), (3, 0), (3, 1), (4, 0)])
    def test_product_vector_in_kernel(self, k, r):
        matrix = general_matrix(k, r)
        assert not np.any(matrix @ product_kernel_vector(k, r))

    @pytest.mark.parametrize("k,r", [(2, 1), (3, 0), (3, 1), (4, 0)])
    def test_embedded_k2_vector_in_kernel(self, k, r):
        matrix = general_matrix(k, r)
        assert not np.any(matrix @ embedded_k2_kernel(k, r))

    def test_product_vector_total_is_one(self):
        for k, r in ((2, 1), (3, 1), (4, 1)):
            assert int(product_kernel_vector(k, r).sum()) == 1

    def test_embedded_negative_mass_is_k2_value(self):
        for k in (2, 3, 4):
            vector = embedded_k2_kernel(k, 1)
            assert int(-vector[vector < 0].sum()) == min_sum_negative(1)

    def test_k2_product_equals_paper_kernel(self):
        from repro.core.lowerbound.kernel import closed_form_kernel

        for r in range(3):
            assert np.array_equal(
                product_kernel_vector(2, r), closed_form_kernel(r)
            )

    @pytest.mark.parametrize(
        "k,r,expected",
        [(2, 0, 1), (2, 1, 1), (3, 0, 4), (3, 1, 25), (4, 0, 11)],
    )
    def test_nullity(self, k, r, expected):
        assert general_nullity(k, r) == expected
        assert general_nullity_closed_form(k, r) == expected


class TestMinNegativeMass:
    @pytest.mark.parametrize("k,r", [(2, 0), (2, 1), (3, 0), (3, 1)])
    def test_matches_k2_closed_form(self, k, r):
        assert min_negative_mass(k, r) == min_sum_negative(r)


class TestGeneralSolver:
    @given(schedules_strategy(k=2, max_nodes=6, max_rounds=3))
    @settings(max_examples=40, deadline=None)
    def test_k2_specialises_to_interval_solver(self, schedules):
        multigraph = DynamicMultigraph(2, schedules)
        observations = multigraph.observations(multigraph.prefix_rounds)
        assert feasible_sizes_general(observations) == frozenset(
            feasible_size_interval(observations)
        )

    @given(schedules_strategy(k=3, max_nodes=5, max_rounds=3))
    @settings(max_examples=30, deadline=None)
    def test_k3_soundness(self, schedules):
        multigraph = DynamicMultigraph(3, schedules)
        for rounds in range(1, multigraph.prefix_rounds + 1):
            sizes = feasible_sizes_general(multigraph.observations(rounds))
            assert multigraph.n in sizes

    @given(
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=20, deadline=None)
    def test_k3_optimal_counter_correct(self, n, seed):
        rng = np.random.default_rng(seed)
        multigraph = DynamicMultigraph.random(3, n, 8, rng)
        assert count_mdblk_abstract(multigraph).count == n

    def test_needs_a_round(self):
        with pytest.raises(ValueError):
            feasible_sizes_general(ObservationSequence(3))

    def test_infeasible_detected(self):
        observations = ObservationSequence(
            2, [{(1, ()): 1}, {(1, (frozenset({2}),)): 1}]
        )
        with pytest.raises(InfeasibleObservationError):
            feasible_sizes_general(observations)

    def test_zero_nodes(self):
        assert feasible_sizes_general(
            ObservationSequence(3, [{}])
        ) == frozenset({0})

    def test_k1_trivial(self):
        # With one label every node shows exactly one edge: the leader
        # counts immediately.
        multigraph = DynamicMultigraph(1, [[frozenset({1})]] * 5)
        sizes = feasible_sizes_general(multigraph.observations(1))
        assert sizes == frozenset({5})


class TestGeneralEngineCounter:
    @given(
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=15, deadline=None)
    def test_engine_agrees_with_abstract(self, n, seed):
        from repro.core.solver_general import count_mdblk

        rng = np.random.default_rng(seed)
        multigraph = DynamicMultigraph.random(3, n, 6, rng)
        engine_outcome = count_mdblk(multigraph)
        abstract_outcome = count_mdblk_abstract(multigraph)
        assert engine_outcome.count == abstract_outcome.count == n
        assert engine_outcome.rounds == abstract_outcome.rounds
        assert (
            engine_outcome.detail["candidate_counts"]
            == abstract_outcome.detail["candidate_counts"]
        )

    def test_k2_engine_path(self):
        from repro.core.solver_general import count_mdblk

        multigraph = DynamicMultigraph(
            2, [[frozenset({1})], [frozenset({2})], [frozenset({1, 2})]]
        )
        assert count_mdblk(multigraph).count == 3
