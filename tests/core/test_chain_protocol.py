"""Unit tests for the Corollary 1 chain-protocol processes."""

from __future__ import annotations

from collections import Counter

from repro.core.counting.chain import (
    ChainLeaderProcess,
    ChainOuterProcess,
    ChainRelayProcess,
    HubProcess,
    _encode_multiset,
    count_chain_pd2,
)
from repro.networks.multigraph import DynamicMultigraph
from repro.simulation.messages import Inbox

ONE = frozenset({1})
TWO = frozenset({2})


class TestEncodeMultiset:
    def test_deterministic_and_hashable(self):
        states = Counter({(ONE,): 2, (TWO, ONE): 1})
        encoded = _encode_multiset(states)
        assert encoded == _encode_multiset(Counter(dict(states)))
        hash(encoded)

    def test_roundtrip_through_dict(self):
        states = Counter({(ONE,): 3})
        assert Counter(dict(_encode_multiset(states))) == states


class TestOuterProcess:
    def test_learns_hub_labels(self):
        outer = ChainOuterProcess()
        outer.deliver(0, Inbox([("hub", 1, frozenset()), ("hub", 2, frozenset())]))
        outer.deliver(1, Inbox([("hub", 2, frozenset())]))
        assert outer.state == (frozenset({1, 2}), frozenset({2}))

    def test_broadcasts_state(self):
        outer = ChainOuterProcess()
        assert outer.compose(0) == ("state", ())


class TestHubProcess:
    def test_emits_observation_one_round_late(self):
        hub = HubProcess(1)
        # Round 0: nothing pending yet.
        kind, hub_id, fresh = hub.compose(0)
        assert (kind, hub_id, fresh) == ("hub", 1, frozenset())
        hub.deliver(0, Inbox([("state", ()), ("state", ())]))
        _kind, _id, fresh = hub.compose(1)
        (token,) = fresh
        assert token[:3] == ("obs", 0, 1)
        assert Counter(dict(token[3])) == Counter({(): 2})


class TestRelayProcess:
    def test_forwards_each_token_once(self):
        relay = ChainRelayProcess()
        token = ("obs", 0, 1, ())
        relay.deliver(0, Inbox([("hub", 1, frozenset({token}))]))
        assert relay.compose(1)[2] == frozenset({token})
        # Hearing the same token again does not re-emit it.
        relay.deliver(1, Inbox([("hub", 1, frozenset({token}))]))
        assert relay.compose(2)[2] == frozenset()


class TestLeaderReassembly:
    def test_out_of_order_tokens_absorbed_in_order(self):
        leader = ChainLeaderProcess()
        obs0_hub1 = ("obs", 0, 1, _encode_multiset(Counter({(): 1})))
        obs0_hub2 = ("obs", 0, 2, _encode_multiset(Counter({(): 1})))
        obs1_hub1 = ("obs", 1, 1, _encode_multiset(Counter({(ONE,): 1})))
        obs1_hub2 = ("obs", 1, 2, _encode_multiset(Counter({(TWO,): 1})))
        # Round-1 tokens arrive before round 0 is complete: nothing
        # absorbed yet.
        leader.deliver(0, Inbox([("hub", 0, frozenset({obs1_hub1, obs1_hub2}))]))
        assert leader.observations.rounds == 0
        # Round-0 tokens complete both rounds at once.
        leader.deliver(1, Inbox([("hub", 0, frozenset({obs0_hub1, obs0_hub2}))]))
        assert leader.observations.rounds == 2
        assert leader.observations.count(0, 1, ()) == 1
        assert leader.observations.count(1, 2, (TWO,)) == 1

    def test_waits_for_both_hubs(self):
        leader = ChainLeaderProcess()
        obs0_hub1 = ("obs", 0, 1, _encode_multiset(Counter({(): 1})))
        leader.deliver(0, Inbox([("hub", 0, frozenset({obs0_hub1}))]))
        assert leader.observations.rounds == 0


class TestEndToEnd:
    def test_hold_extension_schedule(self):
        core = DynamicMultigraph(
            2, [[ONE], [TWO], [frozenset({1, 2})]], extend="hold"
        )
        outcome = count_chain_pd2(core, 1)
        assert outcome.count == 3

    def test_single_node_core(self):
        core = DynamicMultigraph(2, [[ONE]])
        outcome = count_chain_pd2(core, 2)
        assert outcome.count == 1
