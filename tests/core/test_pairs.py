"""Tests for indistinguishable twin configurations (Lemma 5)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.lowerbound.bounds import ambiguity_horizon, min_sum_negative
from repro.core.lowerbound.kernel import kernel_component
from repro.core.lowerbound.pairs import (
    paper_figure3_pair,
    paper_figure4_pair,
    twin_configurations,
    twin_multigraphs,
)
from repro.core.solver import feasible_size_interval


class TestTwinConfigurations:
    def test_sizes(self):
        smaller, larger = twin_configurations(1, 6)
        assert sum(smaller.values()) == 6
        assert sum(larger.values()) == 7

    def test_kernel_relationship(self):
        smaller, larger = twin_configurations(1, 5)
        histories = set(smaller) | set(larger)
        for history in histories:
            delta = larger.get(history, 0) - smaller.get(history, 0)
            assert delta == kernel_component(history)

    def test_smaller_supported_on_negative_components(self):
        smaller, _larger = twin_configurations(2, 20)
        assert all(
            kernel_component(history) < 0 for history in smaller
        )

    def test_precondition_enforced(self):
        with pytest.raises(ValueError, match="needs n >="):
            twin_configurations(2, min_sum_negative(2) - 1)

    def test_minimum_size_accepted(self):
        smaller, _larger = twin_configurations(2, min_sum_negative(2))
        assert all(count == 1 for count in smaller.values())

    @given(
        st.integers(min_value=0, max_value=3),
        st.integers(min_value=0, max_value=30),
    )
    @settings(max_examples=30)
    def test_sizes_property(self, r, extra):
        n = min_sum_negative(r) + extra
        smaller, larger = twin_configurations(r, n)
        assert sum(smaller.values()) == n
        assert sum(larger.values()) == n + 1
        assert all(count >= 0 for count in smaller.values())
        assert all(count >= 0 for count in larger.values())


class TestTwinMultigraphs:
    @pytest.mark.parametrize("n", [4, 5, 13, 40])
    def test_indistinguishable_through_horizon(self, n):
        horizon = ambiguity_horizon(n)
        smaller, larger = twin_multigraphs(horizon, n)
        assert smaller.observations(horizon + 1) == larger.observations(
            horizon + 1
        )

    @pytest.mark.parametrize("n", [4, 13, 40])
    def test_distinguishable_at_next_round(self, n):
        horizon = ambiguity_horizon(n)
        smaller, larger = twin_multigraphs(horizon, n)
        assert smaller.observations(horizon + 2) != larger.observations(
            horizon + 2
        )

    def test_solver_sees_both_sizes(self):
        smaller, larger = twin_multigraphs(1, 6)
        interval = feasible_size_interval(smaller.observations(2))
        assert 6 in interval
        assert 7 in interval


class TestPaperFigures:
    def test_figure3(self):
        smaller, larger = paper_figure3_pair()
        assert (smaller.n, larger.n) == (2, 4)
        assert smaller.observations(1) == larger.observations(1)

    def test_figure4(self):
        smaller, larger = paper_figure4_pair()
        assert (smaller.n, larger.n) == (4, 5)
        assert smaller.observations(2) == larger.observations(2)
        assert smaller.observations(3) != larger.observations(3)
