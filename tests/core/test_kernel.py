"""Tests for kernel vectors and rank certificates (Lemmas 2-4)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.lowerbound.kernel import (
    closed_form_kernel,
    kernel_component,
    modular_rank,
    nullspace_dimension,
    recursive_kernel,
    sum_negative,
    sum_positive,
    verify_in_kernel,
)
from repro.core.lowerbound.matrices import build_matrix, n_columns
from repro.core.states import all_histories

from tests.conftest import history_strategy

ONE, TWO, BOTH = frozenset({1}), frozenset({2}), frozenset({1, 2})


class TestKernelClosedForm:
    def test_k0_matches_paper(self):
        assert closed_form_kernel(0).tolist() == [1, 1, -1]

    def test_k1_matches_paper(self):
        assert closed_form_kernel(1).tolist() == [1, 1, -1, 1, 1, -1, -1, -1, 1]

    def test_component_sign_rule(self):
        assert kernel_component((ONE, TWO)) == 1
        assert kernel_component((BOTH,)) == -1
        assert kernel_component((BOTH, BOTH)) == 1
        assert kernel_component((BOTH, ONE, BOTH, BOTH)) == -1

    @given(history_strategy(k=2, max_length=6))
    def test_component_matches_vector(self, history):
        r = len(history) - 1
        kernel = closed_form_kernel(r)
        index = list(all_histories(2, r + 1)).index(history)
        assert kernel[index] == kernel_component(history)

    def test_recursion_equals_closed_form(self):
        for r in range(6):
            assert np.array_equal(recursive_kernel(r), closed_form_kernel(r))

    def test_length(self):
        for r in range(6):
            assert len(closed_form_kernel(r)) == n_columns(r)

    def test_negative_round_rejected(self):
        with pytest.raises(ValueError):
            closed_form_kernel(-1)


class TestLemma4Sums:
    @pytest.mark.parametrize("r", range(6))
    def test_sum_identities(self, r):
        kernel = closed_form_kernel(r)
        pos = int(kernel[kernel > 0].sum())
        neg = int(-kernel[kernel < 0].sum())
        assert pos == sum_positive(r) == (3 ** (r + 1) + 1) // 2
        assert neg == sum_negative(r) == (3 ** (r + 1) - 1) // 2
        assert pos - neg == 1

    def test_min_is_negative_side(self):
        for r in range(8):
            assert sum_negative(r) < sum_positive(r)


class TestLemma2Kernel:
    @pytest.mark.parametrize("r", range(4))
    def test_kernel_vector_annihilated(self, r):
        assert verify_in_kernel(r)

    @pytest.mark.parametrize("r", range(4))
    def test_nullity_is_one(self, r):
        assert nullspace_dimension(r) == 1

    def test_full_row_rank(self):
        for r in range(3):
            matrix = build_matrix(r)
            assert modular_rank(matrix) == matrix.shape[0]


class TestModularRank:
    def test_identity(self):
        assert modular_rank(np.eye(4, dtype=np.int64)) == 4

    def test_rank_deficient(self):
        matrix = np.array([[1, 2], [2, 4], [0, 1]])
        assert modular_rank(matrix) == 2

    def test_zero_matrix(self):
        assert modular_rank(np.zeros((3, 3), dtype=np.int64)) == 0

    def test_wide_matrix(self):
        matrix = np.array([[1, 0, 1], [0, 1, 1]])
        assert modular_rank(matrix) == 2

    def test_negative_entries(self):
        matrix = np.array([[1, -1], [-1, 1]])
        assert modular_rank(matrix) == 1

    @given(
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=30)
    def test_matches_numpy_rank_on_random_small(self, rows, cols, seed):
        rng = np.random.default_rng(seed)
        matrix = rng.integers(-4, 5, size=(rows, cols))
        assert modular_rank(matrix) == np.linalg.matrix_rank(
            matrix.astype(float)
        )
