"""Tests for the M(DBL)_k dynamic multigraph."""

from __future__ import annotations

from collections import Counter

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.states import leader_observation
from repro.networks.multigraph import DynamicMultigraph
from repro.simulation.errors import ModelError, TopologyError

from tests.conftest import schedules_strategy


def mdbl(schedules, k=2, **kwargs):
    return DynamicMultigraph(
        k, [[frozenset(s) for s in sched] for sched in schedules], **kwargs
    )


class TestConstruction:
    def test_basic(self):
        multigraph = mdbl([[{1}, {1, 2}], [{2}, {2}]])
        assert multigraph.n == 2
        assert multigraph.k == 2
        assert multigraph.prefix_rounds == 2

    def test_rejects_unequal_schedules(self):
        with pytest.raises(ModelError, match="equal length"):
            mdbl([[{1}], [{1}, {2}]])

    def test_rejects_empty_w(self):
        with pytest.raises(ModelError, match="non-empty"):
            DynamicMultigraph(2, [])

    def test_rejects_invalid_labels(self):
        with pytest.raises(ModelError):
            mdbl([[{3}]], k=2)
        with pytest.raises(ModelError):
            mdbl([[set()]], k=2)

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            DynamicMultigraph(0, [[frozenset({1})]])

    def test_hold_needs_prefix(self):
        with pytest.raises(ModelError, match="non-empty prefix"):
            DynamicMultigraph(2, [[]], extend="hold")


class TestExtension:
    def test_full_extension(self):
        multigraph = mdbl([[{1}]], extend="full")
        assert multigraph.labels(0, 0) == frozenset({1})
        assert multigraph.labels(0, 1) == frozenset({1, 2})

    def test_hold_extension(self):
        multigraph = mdbl([[{1}]], extend="hold")
        assert multigraph.labels(0, 7) == frozenset({1})

    def test_strict_extension_raises(self):
        multigraph = mdbl([[{1}]], extend="strict")
        multigraph.labels(0, 0)
        with pytest.raises(TopologyError, match="strict"):
            multigraph.labels(0, 1)


class TestHistoriesAndObservations:
    def test_history(self):
        multigraph = mdbl([[{1}, {2}, {1, 2}]])
        assert multigraph.history(0, 0) == ()
        assert multigraph.history(0, 2) == (frozenset({1}), frozenset({2}))

    def test_observation_matches_leader_observation_helper(self):
        multigraph = mdbl([[{1}, {1, 2}], [{2}, {1}]])
        expected = leader_observation(
            multigraph.label_sets(1),
            [multigraph.history(0, 1), multigraph.history(1, 1)],
        )
        assert multigraph.observation(1) == expected

    def test_observation_round0(self):
        multigraph = mdbl([[{1, 2}], [{2}]])
        assert multigraph.observation(0) == Counter(
            {(1, ()): 1, (2, ()): 2}
        )

    def test_observations_sequence(self):
        multigraph = mdbl([[{1}, {2}]])
        seq = multigraph.observations(2)
        assert seq.rounds == 2
        assert seq.count(0, 1, ()) == 1
        assert seq.count(1, 2, (frozenset({1}),)) == 1

    def test_configuration_multiset(self):
        multigraph = mdbl([[{1}], [{1}], [{2}]])
        config = multigraph.configuration(1)
        assert config == Counter(
            {(frozenset({1}),): 2, (frozenset({2}),): 1}
        )

    @given(schedules_strategy())
    @settings(max_examples=30)
    def test_edge_count_equals_total_labels(self, schedules):
        multigraph = DynamicMultigraph(2, schedules)
        rounds = multigraph.prefix_rounds
        for round_no in range(rounds):
            expected = sum(len(s) for s in multigraph.label_sets(round_no))
            assert multigraph.observations(rounds).edge_count(round_no) == expected


class TestFromSolution:
    def test_roundtrip_through_configuration(self):
        counts = Counter(
            {
                (frozenset({1}), frozenset({1, 2})): 2,
                (frozenset({2}), frozenset({2})): 1,
            }
        )
        multigraph = DynamicMultigraph.from_solution(2, counts)
        assert multigraph.n == 3
        assert multigraph.configuration(2) == counts

    def test_rejects_mixed_lengths(self):
        counts = {
            (frozenset({1}),): 1,
            (frozenset({1}), frozenset({2})): 1,
        }
        with pytest.raises(ModelError, match="one length"):
            DynamicMultigraph.from_solution(2, counts)

    def test_rejects_negative_multiplicity(self):
        with pytest.raises(ModelError, match="negative"):
            DynamicMultigraph.from_solution(2, {(frozenset({1}),): -1})


class TestRandom:
    def test_random_is_reproducible(self):
        a = DynamicMultigraph.random(2, 5, 4, np.random.default_rng(9))
        b = DynamicMultigraph.random(2, 5, 4, np.random.default_rng(9))
        assert a.configuration(4) == b.configuration(4)

    def test_random_respects_k(self):
        multigraph = DynamicMultigraph.random(3, 10, 3, np.random.default_rng(1))
        for node in range(10):
            for round_no in range(3):
                labels = multigraph.labels(node, round_no)
                assert labels
                assert labels <= frozenset({1, 2, 3})
