"""Tests for network generators (stars, PD layers, chains, random, figures)."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.networks.generators.chains import chain_pd2_network
from repro.networks.generators.figures import paper_figure1, paper_figure2_multigraph
from repro.networks.generators.pd import random_pd_network
from repro.networks.generators.random_dynamic import (
    RandomConnectedAdversary,
    random_connected_graph,
)
from repro.networks.generators.stars import star_network
from repro.networks.multigraph import DynamicMultigraph
from repro.networks.properties import (
    is_interval_connected,
    persistent_distances,
    verify_pd,
)
from repro.simulation.errors import ModelError


class TestStars:
    def test_structure(self):
        star = star_network(5)
        graph = star.at(0)
        assert graph.degree(0) == 4
        assert all(graph.degree(node) == 1 for node in range(1, 5))

    def test_is_pd1(self):
        distances = verify_pd(star_network(6), 0, 1, 3)
        assert set(distances.values()) == {0, 1}

    def test_custom_leader(self):
        star = star_network(4, leader=2)
        assert star.at(0).degree(2) == 3

    def test_too_small(self):
        with pytest.raises(ValueError):
            star_network(1)

    def test_bad_leader(self):
        with pytest.raises(ValueError):
            star_network(3, leader=5)


class TestRandomPD:
    def test_layers_and_distances(self):
        network, layers = random_pd_network([4, 7, 3], seed=5)
        assert [len(layer) for layer in layers] == [1, 4, 7, 3]
        distances = verify_pd(network, 0, 3, 6)
        for depth, layer in enumerate(layers):
            assert all(distances[node] == depth for node in layer)

    def test_connected(self):
        network, _layers = random_pd_network([5, 5], seed=2)
        assert is_interval_connected(network, 6)

    def test_reproducible(self):
        n1, _ = random_pd_network([3, 3], seed=11)
        n2, _ = random_pd_network([3, 3], seed=11)
        assert set(n1.at(4).edges()) == set(n2.at(4).edges())

    def test_different_seeds_differ(self):
        n1, _ = random_pd_network([6, 6], seed=1, extra_edge_p=0.5)
        n2, _ = random_pd_network([6, 6], seed=2, extra_edge_p=0.5)
        assert set(n1.at(0).edges()) != set(n2.at(0).edges())

    def test_restricted_model_has_no_intra_layer_edges(self):
        network, layers = random_pd_network([4, 6], seed=7, intra_layer_p=0.0)
        for round_no in range(4):
            graph = network.at(round_no)
            for layer in layers:
                members = set(layer)
                for node in layer:
                    assert not members & set(graph.neighbors(node))

    def test_intra_layer_edges_keep_pd(self):
        network, _layers = random_pd_network(
            [5, 5], seed=3, intra_layer_p=0.5
        )
        verify_pd(network, 0, 2, 4)

    def test_validation(self):
        with pytest.raises(ValueError):
            random_pd_network([])
        with pytest.raises(ValueError):
            random_pd_network([0])
        with pytest.raises(ValueError):
            random_pd_network([2], extra_edge_p=1.5)


class TestChains:
    def _core(self, n=3):
        return DynamicMultigraph(
            2, [[frozenset({1})], [frozenset({2})], [frozenset({1, 2})]][:n]
        )

    def test_layout(self):
        network, layout = chain_pd2_network(self._core(), 2)
        assert layout.chain == (1, 2)
        assert layout.hubs == (3, 4)
        assert layout.outer == (5, 6, 7)
        assert network.n == 8

    def test_outer_distance_is_chain_plus_2(self):
        network, layout = chain_pd2_network(self._core(), 3)
        distances = persistent_distances(network, 0, 1)
        for outer in layout.outer:
            assert distances[outer] == 5

    def test_zero_chain_is_pd2(self):
        network, layout = chain_pd2_network(self._core(), 0)
        verify_pd(network, 0, 2, 1)

    def test_hub_edges_follow_labels(self):
        core = self._core()
        network, layout = chain_pd2_network(core, 1)
        graph = network.at(0)
        assert set(graph.neighbors(layout.outer[0])) == {layout.hub_for_label(1)}
        assert set(graph.neighbors(layout.outer[1])) == {layout.hub_for_label(2)}
        assert set(graph.neighbors(layout.outer[2])) == set(layout.hubs)

    def test_requires_k2(self):
        with pytest.raises(ModelError, match="M\\(DBL\\)_2"):
            chain_pd2_network(
                DynamicMultigraph(3, [[frozenset({3})]]), 1
            )

    def test_negative_chain_rejected(self):
        with pytest.raises(ValueError):
            chain_pd2_network(self._core(), -1)

    def test_hub_for_label_validation(self):
        _network, layout = chain_pd2_network(self._core(), 0)
        with pytest.raises(ValueError):
            layout.hub_for_label(3)


class TestRandomDynamic:
    def test_connected(self, rng):
        for _ in range(20):
            graph = random_connected_graph(12, rng)
            assert nx.is_connected(graph)

    def test_single_node(self, rng):
        graph = random_connected_graph(1, rng)
        assert graph.number_of_nodes() == 1

    def test_extra_edges_increase_density(self):
        rng1 = np.random.default_rng(0)
        rng2 = np.random.default_rng(0)
        sparse = random_connected_graph(20, rng1, extra_edge_p=0.0)
        dense = random_connected_graph(20, rng2, extra_edge_p=0.8)
        assert sparse.number_of_edges() == 19  # exactly a tree
        assert dense.number_of_edges() > sparse.number_of_edges()

    def test_adversary_reproducible_per_round(self):
        adversary = RandomConnectedAdversary(8, seed=3)
        assert set(adversary.graph(5, None).edges()) == set(
            adversary.graph(5, None).edges()
        )

    def test_adversary_changes_over_rounds(self):
        adversary = RandomConnectedAdversary(10, seed=3)
        assert set(adversary.graph(0, None).edges()) != set(
            adversary.graph(1, None).edges()
        )

    def test_as_dynamic_graph(self):
        graph = RandomConnectedAdversary(6, seed=1).as_dynamic_graph()
        assert is_interval_connected(graph, 5)

    def test_validation(self):
        with pytest.raises(ValueError):
            RandomConnectedAdversary(0)
        with pytest.raises(ValueError):
            RandomConnectedAdversary(3, extra_edge_p=2.0)


class TestFigureGenerators:
    def test_figure1_periodicity(self):
        figure = paper_figure1()
        assert set(figure.graph.at(0).edges()) == set(figure.graph.at(3).edges())

    def test_figure1_nodes(self):
        figure = paper_figure1()
        assert figure.graph.n == 6
        assert figure.v0 != figure.v3

    def test_figure2_multigraph(self):
        multigraph = paper_figure2_multigraph()
        assert multigraph.k == 3
        assert multigraph.n == 4
        assert multigraph.labels(3, 0) == frozenset({1, 2, 3})
