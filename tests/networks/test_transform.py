"""Tests for the Lemma 1 transformation M(DBL)_k -> G(PD)_2."""

from __future__ import annotations

from hypothesis import given, settings

from repro.networks.multigraph import DynamicMultigraph
from repro.networks.properties import verify_pd
from repro.networks.transform import mdbl_to_pd2

from tests.conftest import schedules_strategy


class TestLayout:
    def test_layout_indices(self):
        multigraph = DynamicMultigraph(3, [[frozenset({1})]] * 2)
        _graph, layout = mdbl_to_pd2(multigraph)
        assert layout.leader == 0
        assert layout.middle == (1, 2, 3)
        assert layout.outer == (4, 5)
        assert layout.n == 6

    def test_label_middle_mapping(self):
        multigraph = DynamicMultigraph(2, [[frozenset({1})]])
        _graph, layout = mdbl_to_pd2(multigraph)
        assert layout.middle_for_label(1) == 1
        assert layout.middle_for_label(2) == 2
        assert layout.label_for_middle(2) == 2


class TestTransformStructure:
    def test_docstring_example(self):
        multigraph = DynamicMultigraph(
            2, [[frozenset({1})], [frozenset({1, 2})]]
        )
        graph, _layout = mdbl_to_pd2(multigraph)
        assert sorted(graph.at(0).edges()) == [
            (0, 1),
            (0, 2),
            (1, 3),
            (1, 4),
            (2, 4),
        ]

    def test_leader_always_adjacent_to_all_middles(self):
        multigraph = DynamicMultigraph(2, [[frozenset({1})] * 3])
        graph, layout = mdbl_to_pd2(multigraph)
        for round_no in range(3):
            for middle in layout.middle:
                assert graph.at(round_no).has_edge(layout.leader, middle)

    @given(schedules_strategy(max_nodes=5, max_rounds=3))
    @settings(max_examples=25)
    def test_edges_mirror_labels(self, schedules):
        multigraph = DynamicMultigraph(2, schedules)
        graph, layout = mdbl_to_pd2(multigraph)
        for round_no in range(multigraph.prefix_rounds):
            snapshot = graph.at(round_no)
            for w, outer in enumerate(layout.outer):
                neighbours = frozenset(
                    layout.label_for_middle(m)
                    for m in snapshot.neighbors(outer)
                )
                assert neighbours == multigraph.labels(w, round_no)

    @given(schedules_strategy(max_nodes=5, max_rounds=3))
    @settings(max_examples=25)
    def test_image_is_pd2(self, schedules):
        multigraph = DynamicMultigraph(2, schedules)
        graph, layout = mdbl_to_pd2(multigraph)
        distances = verify_pd(graph, layout.leader, 2, multigraph.prefix_rounds)
        assert all(distances[m] == 1 for m in layout.middle)
        assert all(distances[o] == 2 for o in layout.outer)

    def test_k3_transform(self):
        multigraph = DynamicMultigraph(
            3, [[frozenset({1, 3})], [frozenset({2})]]
        )
        graph, layout = mdbl_to_pd2(multigraph)
        snapshot = graph.at(0)
        assert set(snapshot.neighbors(layout.outer[0])) == {
            layout.middle_for_label(1),
            layout.middle_for_label(3),
        }
        assert set(snapshot.neighbors(layout.outer[1])) == {
            layout.middle_for_label(2)
        }
