"""Tests for the DynamicGraph abstraction."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.networks.dynamic_graph import DynamicGraph
from repro.simulation.errors import ModelError, TopologyError


def path(n):
    return nx.path_graph(n)


class TestDynamicGraph:
    def test_provider_access_and_caching(self):
        calls = []

        def provider(round_no):
            calls.append(round_no)
            return path(3)

        graph = DynamicGraph(3, provider)
        graph.at(0)
        graph.at(0)
        graph.at(1)
        assert calls == [0, 1]

    def test_validates_node_set(self):
        graph = DynamicGraph(4, lambda r: path(3))
        with pytest.raises(TopologyError, match="node set"):
            graph.at(0)

    def test_wrong_labels_reported_even_when_size_matches(self):
        # Three nodes, but labeled 10..12: the error must name the
        # offending labels, not just report a (correct-looking) size.
        shifted = nx.relabel_nodes(path(3), {0: 10, 1: 11, 2: 12})
        graph = DynamicGraph(3, lambda r: shifted)
        with pytest.raises(TopologyError, match=r"unexpected labels \[10, 11, 12\]"):
            graph.at(0)

    def test_missing_labels_reported(self):
        graph = DynamicGraph(4, lambda r: path(3))
        with pytest.raises(TopologyError, match=r"missing \[3\]"):
            graph.at(0)

    def test_copy_on_cache_shields_provider_mutation(self):
        # A provider that keeps mutating the one graph object it hands
        # out must not retroactively corrupt already-cached rounds.
        live = path(3)
        graph = DynamicGraph(3, lambda r: live)
        before = set(graph.at(0).edges())
        live.add_edge(0, 2)
        assert set(graph.at(0).edges()) == before

    def test_copy_on_cache_can_be_disabled(self):
        live = path(3)
        graph = DynamicGraph(3, lambda r: live, copy_on_cache=False)
        assert graph.at(0) is live

    def test_negative_round_rejected(self):
        graph = DynamicGraph(3, lambda r: path(3))
        with pytest.raises(ValueError):
            graph.at(-1)

    def test_topology_provider_interface(self):
        graph = DynamicGraph(3, lambda r: path(3))
        assert graph.graph(0, None).number_of_nodes() == 3

    def test_window(self):
        graph = DynamicGraph(2, lambda r: path(2))
        assert len(graph.window(4)) == 4

    def test_needs_positive_n(self):
        with pytest.raises(ValueError):
            DynamicGraph(0, lambda r: path(1))


class TestFromGraphs:
    def test_hold_extension(self):
        g0, g1 = path(3), nx.cycle_graph(3)
        graph = DynamicGraph.from_graphs([g0, g1], extend="hold")
        assert set(graph.at(5).edges()) == set(g1.edges())

    def test_cycle_extension(self):
        g0, g1 = path(3), nx.cycle_graph(3)
        graph = DynamicGraph.from_graphs([g0, g1], extend="cycle")
        assert set(graph.at(2).edges()) == set(g0.edges())
        assert set(graph.at(3).edges()) == set(g1.edges())

    def test_strict_extension_raises(self):
        graph = DynamicGraph.from_graphs([path(3)], extend="strict")
        graph.at(0)
        with pytest.raises(TopologyError, match="strict"):
            graph.at(1)

    def test_snapshots_are_copies(self):
        original = path(3)
        graph = DynamicGraph.from_graphs([original])
        original.add_edge(0, 2)
        assert not graph.at(0).has_edge(0, 2)

    def test_mismatched_node_sets_rejected(self):
        with pytest.raises(ModelError, match="static"):
            DynamicGraph.from_graphs([path(3), path(4)])

    def test_empty_rejected(self):
        with pytest.raises(ModelError):
            DynamicGraph.from_graphs([])

    def test_bad_extend_rule(self):
        with pytest.raises(ValueError):
            DynamicGraph.from_graphs([path(2)], extend="loop")

    def test_hold_repeats_last_graph_object(self):
        graph = DynamicGraph.from_graphs([path(3), nx.cycle_graph(3)])
        assert graph.at(2) is graph.at(99)

    def test_cycle_wraps_to_prefix_objects(self):
        graph = DynamicGraph.from_graphs(
            [path(3), nx.cycle_graph(3)], extend="cycle"
        )
        assert graph.at(4) is graph.at(0)
        assert graph.at(7) is graph.at(1)

    def test_strict_serves_full_prefix(self):
        graphs = [path(3), nx.cycle_graph(3), nx.star_graph(2)]
        graph = DynamicGraph.from_graphs(graphs, extend="strict")
        for round_no, expected in enumerate(graphs):
            assert set(graph.at(round_no).edges()) == set(expected.edges())

    def test_mismatched_node_labels_rejected(self):
        shifted = nx.relabel_nodes(path(3), {0: 10, 1: 11, 2: 12})
        with pytest.raises(ModelError, match="static"):
            DynamicGraph.from_graphs([path(3), shifted])

    def test_non_contiguous_labels_rejected_eagerly(self):
        # A shared-but-wrong node set like {1, 2, 3} used to slip
        # through construction and only explode at the first at() call;
        # now from_graphs validates {0..n-1} up front and names the
        # offending labels.
        shifted = nx.relabel_nodes(path(3), {0: 1, 1: 2, 2: 3})
        with pytest.raises(ModelError, match=r"unexpected labels \[3\]"):
            DynamicGraph.from_graphs([shifted, shifted.copy()])


class TestToCSR:
    def test_matches_graph(self):
        graph = DynamicGraph.from_graphs([path(4)])
        adjacency = graph.to_csr(0)
        assert adjacency.n == 4
        assert adjacency.edges == 3
        assert adjacency.connected is True
        assert list(adjacency.degrees) == [1, 2, 2, 1]

    def test_memoized_per_graph_object(self):
        graph = DynamicGraph.from_graphs([path(3)], extend="hold")
        first = graph.to_csr(0)
        assert graph.to_csr(7) is first

    def test_cycle_extension_lowers_each_prefix_graph_once(self):
        graph = DynamicGraph.from_graphs(
            [path(3), nx.cycle_graph(3)], extend="cycle"
        )
        lowered = {id(graph.to_csr(round_no)) for round_no in range(6)}
        assert len(lowered) == 2

    def test_fresh_graphs_lowered_per_round(self):
        graph = DynamicGraph(3, lambda r: path(3))
        assert graph.to_csr(0) is not graph.to_csr(1)
        assert graph.to_csr(1) is graph.to_csr(1)

    def test_invalid_graph_rejected(self):
        graph = DynamicGraph(3, lambda r: path(3))
        loop = graph.at(0)
        loop.add_edge(1, 1)
        with pytest.raises(TopologyError, match="self-loop"):
            graph.to_csr(0)


class TestExtendRulesOnBothBackends:
    """Differential: hold/cycle identity-memoized lowering, both engines."""

    @pytest.mark.parametrize("extend", ["hold", "cycle"])
    def test_flood_times_agree(self, extend):
        from repro.core.counting.flooding import flood_time_via_protocol

        graphs = [path(5), nx.cycle_graph(5), nx.star_graph(4)]
        times = {}
        for backend in ("object", "fast"):
            network = DynamicGraph.from_graphs(graphs, extend=extend)
            times[backend] = flood_time_via_protocol(
                network, 2, max_rounds=32, backend=backend
            )
        assert times["object"] == times["fast"]

    @pytest.mark.parametrize("extend", ["hold", "cycle"])
    def test_fast_backend_lowers_each_prefix_graph_once(self, extend):
        from repro.core.counting.flooding import flood_time_via_protocol
        from repro.obs.metrics import MetricsRegistry, use_registry

        graphs = [path(4), nx.cycle_graph(4)]
        network = DynamicGraph.from_graphs(graphs, extend=extend)
        registry = MetricsRegistry()
        with use_registry(registry):
            flood_time_via_protocol(
                network, 0, max_rounds=32, backend="fast"
            )
        counters = registry.snapshot()["counters"]
        assert counters["adjacency.builds"] <= len(graphs)
