"""Tests for the edge-Markov, T-interval, and geometric generators."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.networks.generators.geometric import (
    RandomWaypointDynamicGraph,
    random_waypoint_network,
)
from repro.networks.generators.markov import (
    EdgeMarkovDynamicGraph,
    edge_markov_network,
)
from repro.networks.generators.t_interval import t_interval_network
from repro.networks.properties import (
    is_interval_connected,
    is_t_interval_connected,
)


class TestEdgeMarkov:
    def test_connected_every_round(self):
        network = edge_markov_network(15, seed=1)
        assert is_interval_connected(network, 20)

    def test_temporal_correlation(self):
        # With small flip probabilities most edges persist round to
        # round; overlap must exceed that of independent redraws.
        network = edge_markov_network(20, p_up=0.01, p_down=0.05, seed=2)
        first = set(map(frozenset, network.at(5).edges()))
        second = set(map(frozenset, network.at(6).edges()))
        overlap = len(first & second) / max(len(first), 1)
        assert overlap > 0.7

    def test_reproducible(self):
        a = edge_markov_network(10, seed=9)
        b = edge_markov_network(10, seed=9)
        for round_no in (0, 3, 7):
            assert set(a.at(round_no).edges()) == set(b.at(round_no).edges())

    def test_dynamics_change(self):
        network = edge_markov_network(12, p_up=0.2, p_down=0.5, seed=3)
        assert set(network.at(0).edges()) != set(network.at(4).edges())

    def test_validation(self):
        with pytest.raises(ValueError):
            EdgeMarkovDynamicGraph(1)
        with pytest.raises(ValueError):
            EdgeMarkovDynamicGraph(5, p_up=1.5)


class TestTInterval:
    @pytest.mark.parametrize("t", [1, 2, 4])
    def test_window_property_holds(self, t):
        network = t_interval_network(12, t, seed=4)
        assert is_t_interval_connected(network, t, rounds=4 * t)

    def test_one_interval_special_case(self):
        network = t_interval_network(8, 1, seed=0)
        assert is_interval_connected(network, 8)

    def test_trees_rotate_across_blocks(self):
        network = t_interval_network(16, 2, seed=6, extra_edge_p=0.0)
        # Graphs within one block are equal; far-apart blocks differ.
        assert set(network.at(0).edges()) == set(network.at(1).edges())
        assert set(network.at(0).edges()) != set(network.at(8).edges())

    def test_validation(self):
        with pytest.raises(ValueError):
            t_interval_network(1, 2)
        with pytest.raises(ValueError):
            t_interval_network(5, 0)
        with pytest.raises(ValueError):
            is_t_interval_connected(t_interval_network(5, 2), 0, 4)
        with pytest.raises(ValueError):
            is_t_interval_connected(t_interval_network(5, 2), 4, 2)

    def test_verifier_detects_violation(self):
        # Alternating disjoint trees are 1- but not 2-interval connected.
        from repro.networks.dynamic_graph import DynamicGraph

        star_like = nx.star_graph(3)
        path_like = nx.path_graph(4)
        network = DynamicGraph.from_graphs(
            [star_like, path_like], extend="cycle"
        )
        assert is_interval_connected(network, 4)
        assert not is_t_interval_connected(network, 2, 4)


class TestRandomWaypoint:
    def test_connected_every_round(self):
        network = random_waypoint_network(14, seed=2)
        assert is_interval_connected(network, 15)

    def test_positions_move_gradually(self):
        walk = RandomWaypointDynamicGraph(10, step=0.05, seed=1)
        early = walk.positions(0)
        later = walk.positions(1)
        displacement = ((later - early) ** 2).sum(axis=1) ** 0.5
        assert displacement.max() <= 0.05 + 1e-9

    def test_positions_stay_in_unit_square(self):
        walk = RandomWaypointDynamicGraph(10, step=0.5, seed=3)
        for round_no in range(10):
            points = walk.positions(round_no)
            assert (points >= 0).all() and (points <= 1).all()

    def test_reproducible(self):
        a = random_waypoint_network(8, seed=7)
        b = random_waypoint_network(8, seed=7)
        assert set(a.at(5).edges()) == set(b.at(5).edges())

    def test_geometry_determines_edges(self):
        walk = RandomWaypointDynamicGraph(12, radius=0.3, seed=4)
        graph = walk.at(0)
        points = walk.positions(0)
        for u, v in graph.edges():
            distance = (((points[u] - points[v]) ** 2).sum()) ** 0.5
            # Either a geometric edge or a connectivity repair shortcut.
            assert distance <= 1.5

    def test_validation(self):
        with pytest.raises(ValueError):
            RandomWaypointDynamicGraph(1)
        with pytest.raises(ValueError):
            RandomWaypointDynamicGraph(5, radius=0.0)
