"""Tests for CSR-native dynamic topologies (repro.networks.csr_native).

Covers the edge-array provider protocol (:class:`CSRDynamicGraph`),
precompiled schedules, the CSR view == networkx view equivalence for
every CSR-native family, object == fast differential runs on top of
them, and the bounded-memory contract for long fresh-graph-per-round
simulations.
"""

from __future__ import annotations

import tracemalloc

import networkx as nx
import numpy as np
import pytest

from repro.adversaries.worst_case import worst_case_pd2_network
from repro.core.counting.flooding import flood_time_via_protocol
from repro.core.counting.gossip import gossip_size_estimates
from repro.networks import CSRDynamicGraph, precompile_schedule
from repro.networks.csr_native import DEFAULT_ROUND_CACHE_SIZE
from repro.networks.generators.markov import edge_markov_network
from repro.networks.generators.pd import random_pd_network
from repro.networks.generators.random_dynamic import (
    RandomConnectedAdversary,
    random_connected_edges,
)
from repro.networks.generators.t_interval import t_interval_network
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.simulation.errors import TopologyError


def ring_provider(n):
    def provider(round_no):
        u = np.arange(n, dtype=np.int64)
        return u, (u + 1) % n

    return provider


def family_networks(seed=5):
    """One instance per CSR-native family, labelled for test ids."""
    return {
        "arbitrary": RandomConnectedAdversary(
            11, seed=seed
        ).as_dynamic_graph(),
        "t-interval": t_interval_network(10, 3, seed=seed),
        "markov": edge_markov_network(12, seed=seed),
        "pd": random_pd_network(
            [3, 4, 2], seed=seed, extra_edge_p=0.3, intra_layer_p=0.2
        )[0],
        "worst-case-precompiled": worst_case_pd2_network(
            6, precompiled=True
        )[0],
    }


class TestCSRDynamicGraph:
    def test_csr_matches_networkx_view(self):
        network = CSRDynamicGraph(5, ring_provider(5))
        for round_no in range(3):
            dense = network.to_csr(round_no).matrix.toarray()
            reference = nx.to_numpy_array(
                network.at(round_no), nodelist=range(5)
            )
            assert np.array_equal(dense, reference)

    def test_edges_and_csr_are_memoized(self):
        network = CSRDynamicGraph(6, ring_provider(6))
        assert network.edges(2) is network.edges(2)
        assert network.to_csr(2) is network.to_csr(2)
        assert network.at(2) is network.at(2)

    def test_negative_round_rejected(self):
        network = CSRDynamicGraph(4, ring_provider(4))
        with pytest.raises(ValueError, match="start at 0"):
            network.to_csr(-1)

    def test_out_of_range_endpoint_rejected(self):
        def provider(round_no):
            return np.array([0, 9]), np.array([1, 2])

        with pytest.raises(TopologyError, match="outside"):
            CSRDynamicGraph(4, provider).to_csr(0)

    def test_self_loop_rejected(self):
        def provider(round_no):
            return np.array([0, 2]), np.array([1, 2])

        with pytest.raises(TopologyError, match="self-loop"):
            CSRDynamicGraph(4, provider).to_csr(0)

    def test_mismatched_lengths_rejected(self):
        def provider(round_no):
            return np.array([0, 1]), np.array([1])

        with pytest.raises(TopologyError, match="length"):
            CSRDynamicGraph(4, provider).edges(0)

    def test_duplicate_and_reversed_edges_collapse(self):
        def provider(round_no):
            return np.array([0, 1, 1, 2]), np.array([1, 0, 2, 1])

        adjacency = CSRDynamicGraph(3, provider).to_csr(0)
        assert adjacency.edges == 2
        assert adjacency.connected

    def test_round_caches_are_bounded(self):
        network = RandomConnectedAdversary(8, seed=1).as_dynamic_graph()
        for round_no in range(3 * DEFAULT_ROUND_CACHE_SIZE):
            network.to_csr(round_no)
            network.at(round_no)
        assert all(
            size <= DEFAULT_ROUND_CACHE_SIZE
            for size in network.cache_sizes().values()
        )

    def test_eviction_counter_increments(self):
        registry = MetricsRegistry()
        network = CSRDynamicGraph(5, ring_provider(5), cache_rounds=2)
        with use_registry(registry):
            for round_no in range(6):
                network.to_csr(round_no)
        counters = registry.snapshot()["counters"]
        assert counters["adjacency.cache_evictions"] >= 4


class TestPrecompiledSchedules:
    def source(self, n=6, seed=3):
        def provider(round_no):
            return random_connected_edges(
                n, np.random.default_rng([seed, round_no]), extra_edge_p=0.2
            )

        return CSRDynamicGraph(n, provider, name="source")

    def test_prefix_matches_source(self):
        source = self.source()
        compiled = precompile_schedule(source, 4)
        for round_no in range(4):
            assert np.array_equal(
                compiled.to_csr(round_no).matrix.toarray(),
                source.to_csr(round_no).matrix.toarray(),
            )

    def test_hold_repeats_last_round(self):
        compiled = precompile_schedule(self.source(), 3, extend="hold")
        last = compiled.to_csr(2)
        assert compiled.to_csr(7) is last
        assert compiled.at(9) is compiled.at(2)

    def test_cycle_wraps(self):
        source = self.source()
        compiled = precompile_schedule(source, 3, extend="cycle")
        assert compiled.to_csr(4) is compiled.to_csr(1)
        assert np.array_equal(
            compiled.to_csr(5).matrix.toarray(),
            source.to_csr(2).matrix.toarray(),
        )

    def test_strict_raises_past_prefix(self):
        compiled = precompile_schedule(self.source(), 3, extend="strict")
        compiled.to_csr(2)
        with pytest.raises(TopologyError, match="precompiled"):
            compiled.to_csr(3)

    def test_non_native_source_supported(self):
        from repro.networks.dynamic_graph import DynamicGraph

        graphs = [nx.path_graph(4), nx.cycle_graph(4)]
        source = DynamicGraph.from_graphs(graphs)
        compiled = precompile_schedule(source, 2)
        for round_no in range(2):
            assert np.array_equal(
                compiled.to_csr(round_no).matrix.toarray(),
                nx.to_numpy_array(graphs[round_no], nodelist=range(4)),
            )

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one round"):
            precompile_schedule(self.source(), 0)
        with pytest.raises(ValueError, match="extend"):
            precompile_schedule(self.source(), 2, extend="loop")

    def test_schedule_counter(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            precompile_schedule(self.source(), 2)
        counters = registry.snapshot()["counters"]
        assert counters["adjacency.precompiled_schedules"] == 1
        assert counters["adjacency.native_builds"] >= 2


class TestFamilyEquivalence:
    @pytest.mark.parametrize("family", sorted(family_networks()))
    def test_native_csr_equals_networkx(self, family):
        network = family_networks()[family]
        for round_no in range(6):
            adjacency = network.to_csr(round_no)
            graph = network.at(round_no)
            reference = nx.to_numpy_array(graph, nodelist=range(network.n))
            assert np.array_equal(adjacency.matrix.toarray(), reference)
            assert adjacency.connected == nx.is_connected(graph)
            assert np.array_equal(adjacency.degrees, reference.sum(axis=1))

    @pytest.mark.parametrize("family", sorted(family_networks()))
    def test_object_and_fast_backends_agree(self, family):
        object_rounds = flood_time_via_protocol(family_networks()[family], 0)
        fast_rounds = flood_time_via_protocol(
            family_networks()[family], 0, backend="fast"
        )
        assert object_rounds == fast_rounds

    def test_precompiled_worst_case_equals_plain(self):
        plain, _layout = worst_case_pd2_network(7)
        compiled, _layout = worst_case_pd2_network(7, precompiled=True)
        for round_no in range(10):
            assert np.array_equal(
                compiled.to_csr(round_no).matrix.toarray(),
                nx.to_numpy_array(plain.at(round_no), nodelist=range(plain.n)),
            )


class TestBoundedMemory:
    def test_long_fresh_graph_run_keeps_caches_bounded(self):
        adversary = RandomConnectedAdversary(16, seed=9, extra_edge_p=0.0)
        estimates = gossip_size_estimates(adversary, 16, 150, backend="fast")
        assert len(estimates) == 150
        network = adversary.as_dynamic_graph()
        assert all(
            size <= DEFAULT_ROUND_CACHE_SIZE
            for size in network.cache_sizes().values()
        )

    def test_long_fresh_graph_run_memory_is_stable(self):
        # After the LRU warms up, hundreds more fresh rounds must not
        # accumulate lowered adjacencies (the pre-fix behaviour leaked
        # one CSR matrix + edge arrays per round).
        network = RandomConnectedAdversary(24, seed=4).as_dynamic_graph()
        tracemalloc.start()
        try:
            for round_no in range(2 * DEFAULT_ROUND_CACHE_SIZE):
                network.to_csr(round_no)
            warm = tracemalloc.get_traced_memory()[0]
            for round_no in range(
                2 * DEFAULT_ROUND_CACHE_SIZE, 8 * DEFAULT_ROUND_CACHE_SIZE
            ):
                network.to_csr(round_no)
            settled = tracemalloc.get_traced_memory()[0]
        finally:
            tracemalloc.stop()
        assert settled - warm < 256 * 1024


class TestIndexDtypePolicy:
    """The int32-first CSR index policy (repro.networks.csr)."""

    def test_boundary(self):
        from repro.networks.csr import index_dtype_for

        assert index_dtype_for(0) == np.int32
        assert index_dtype_for(2**31 - 1) == np.int32
        assert index_dtype_for(2**31) == np.int64

    def test_csr_from_edges_uses_int32_when_small(self):
        from repro.networks.csr import csr_from_edges

        u = np.array([0, 1, 2], dtype=np.int64)
        v = np.array([1, 2, 3], dtype=np.int64)
        adjacency = csr_from_edges(4, u, v)
        assert adjacency.matrix.indices.dtype == np.int32
        assert adjacency.matrix.indptr.dtype == np.int32

    def test_lowered_graph_uses_int32_when_small(self):
        from repro.networks.csr import lower_graph

        adjacency = lower_graph(nx.path_graph(5))
        assert adjacency.matrix.indices.dtype == np.int32
        assert adjacency.matrix.indptr.dtype == np.int32

    def test_stacked_adjacency_keeps_policy_dtype(self):
        from repro.networks.csr import lower_graph, stack_adjacencies

        stacked = stack_adjacencies(
            [lower_graph(nx.path_graph(4)), lower_graph(nx.cycle_graph(5))]
        )
        assert stacked.matrix.indices.dtype == np.int32

    def test_dedup_keys_never_wrap_at_large_n(self):
        # a*n + b of the duplicate-collapse key can exceed int32 even
        # when every endpoint fits it; the key math must run in int64.
        from repro.networks.csr import csr_from_edges

        n = 2**20
        u = np.array([n - 2, n - 1, n - 2], dtype=np.int64)
        v = np.array([n - 1, n - 2, n - 1], dtype=np.int64)
        adjacency = csr_from_edges(n, u, v)
        assert adjacency.edges == 1  # all three collapse to one edge
        assert adjacency.matrix.indices.dtype == np.int32

    def test_out_of_range_endpoints_rejected_not_wrapped(self):
        # Validation must happen before any int32 narrowing: an
        # endpoint beyond the range would otherwise wrap into a valid-
        # looking index and pass the check.
        from repro.networks.csr import validate_edge_arrays

        u = np.array([0, 2**33], dtype=np.int64)
        v = np.array([1, 1], dtype=np.int64)
        with pytest.raises(TopologyError):
            validate_edge_arrays(4, u, v)

    def test_validated_arrays_come_back_in_policy_dtype(self):
        from repro.networks.csr import validate_edge_arrays

        u = np.array([0, 1], dtype=np.int64)
        v = np.array([1, 2], dtype=np.int64)
        out_u, out_v = validate_edge_arrays(3, u, v)
        assert out_u.dtype == np.int32
        assert out_v.dtype == np.int32

    def test_precompiled_store_uses_policy_dtype(self):
        network = precompile_schedule(
            CSRDynamicGraph(6, ring_provider(6)), 3
        )
        for round_no in range(3):
            u, v = network.edges(round_no)
            assert u.dtype == np.int32
            assert v.dtype == np.int32
            assert network.to_csr(round_no).matrix.indices.dtype == np.int32
