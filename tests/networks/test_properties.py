"""Tests for dynamic graph property verifiers."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.networks.dynamic_graph import DynamicGraph
from repro.networks.generators.figures import paper_figure1
from repro.networks.generators.pd import random_pd_network
from repro.networks.generators.stars import star_network
from repro.networks.properties import (
    dynamic_diameter,
    flood_completion_time,
    is_interval_connected,
    pd_layers,
    persistent_distances,
    verify_pd,
)
from repro.simulation.errors import ModelError


def static(graph):
    return DynamicGraph(graph.number_of_nodes(), lambda r: graph)


class TestIntervalConnectivity:
    def test_connected_static(self):
        assert is_interval_connected(static(nx.path_graph(4)), 5)

    def test_disconnected_detected(self):
        graph = nx.Graph()
        graph.add_nodes_from(range(3))
        graph.add_edge(0, 1)
        assert not is_interval_connected(static(graph), 1)


class TestPersistentDistances:
    def test_static_graph_distances(self):
        distances = persistent_distances(static(nx.path_graph(4)), 0, 3)
        assert distances == {0: 0, 1: 1, 2: 2, 3: 3}

    def test_changing_distances_return_none(self):
        g0 = nx.path_graph(3)
        g1 = nx.Graph([(0, 1), (0, 2)])
        graph = DynamicGraph.from_graphs([g0, g1])
        assert persistent_distances(graph, 0, 2) is None

    def test_unreachable_node_returns_none(self):
        graph = nx.Graph()
        graph.add_nodes_from(range(3))
        graph.add_edge(0, 1)
        assert persistent_distances(static(graph), 0, 1) is None

    def test_figure1_is_pd2(self):
        figure = paper_figure1()
        distances = verify_pd(figure.graph, 0, 2, 6)
        assert distances[figure.v0] == 2
        assert distances[figure.v3] == 2

    def test_verify_pd_rejects_deep_layers(self):
        with pytest.raises(ModelError, match="persistent distance"):
            verify_pd(static(nx.path_graph(5)), 0, 2, 2)

    def test_verify_pd_rejects_nonpersistent(self):
        g0 = nx.path_graph(3)
        g1 = nx.Graph([(0, 1), (0, 2)])
        graph = DynamicGraph.from_graphs([g0, g1])
        with pytest.raises(ModelError, match="persistent"):
            verify_pd(graph, 0, 2, 2)

    def test_pd_layers_partition(self):
        network, expected_layers = random_pd_network([3, 5], seed=1)
        layers = pd_layers(network, 0, 2, 5)
        assert layers == expected_layers
        assert sum(len(layer) for layer in layers) == network.n


class TestFlooding:
    def test_star_floods_in_one_round(self):
        star = star_network(6)
        assert flood_completion_time(star, 0) == 1

    def test_star_leaf_floods_in_two_rounds(self):
        star = star_network(6)
        assert flood_completion_time(star, 3) == 2

    def test_path_flood_time(self):
        graph = static(nx.path_graph(5))
        assert flood_completion_time(graph, 0) == 4
        assert flood_completion_time(graph, 2) == 2

    def test_start_round_matters(self):
        figure = paper_figure1()
        # The flood followed by the paper: from v0 at round 0, 4 rounds.
        assert flood_completion_time(figure.graph, figure.v0, 0) == 4

    def test_flood_timeout(self):
        graph = nx.Graph()
        graph.add_nodes_from(range(2))
        with pytest.raises(ModelError, match="did not complete"):
            flood_completion_time(static(graph), 0, horizon=10)


class TestDynamicDiameter:
    def test_star(self):
        assert dynamic_diameter(star_network(5)) == 2

    def test_path_equals_graph_diameter(self):
        assert dynamic_diameter(static(nx.path_graph(6))) == 5

    def test_figure1_is_4(self):
        figure = paper_figure1()
        assert dynamic_diameter(figure.graph, start_rounds=3) == 4

    def test_sources_subset(self):
        star = star_network(5)
        assert dynamic_diameter(star, sources=[0]) == 1

    def test_random_pd_bounded_by_2h(self):
        network, _layers = random_pd_network([4, 6, 5], seed=3)
        measured = dynamic_diameter(network, start_rounds=2)
        assert measured <= 2 * 3
