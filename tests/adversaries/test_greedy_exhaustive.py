"""Tests for the greedy adaptive and exhaustive optimal adversaries."""

from __future__ import annotations

import pytest

from repro.adversaries.exhaustive import exhaustive_max_rounds
from repro.adversaries.greedy import GreedyAmbiguityAdversary, greedy_schedule
from repro.core.counting.optimal import count_mdbl2_abstract
from repro.core.lowerbound.bounds import rounds_to_count


class TestGreedyAdversary:
    def test_schedules_are_legal(self):
        adversary = GreedyAmbiguityAdversary(5)
        label_sets = adversary.play_round()
        assert len(label_sets) == 5
        assert all(labels and labels <= {1, 2} for labels in label_sets)

    def test_width_history_tracks_solver(self):
        adversary = GreedyAmbiguityAdversary(4)
        rounds = adversary.play_until_pinned()
        assert len(adversary.width_history) == rounds
        assert adversary.width_history[-1] == 0

    @pytest.mark.parametrize("n", [2, 4, 8, 13])
    def test_never_beats_theory(self, n):
        adversary = GreedyAmbiguityAdversary(n)
        assert adversary.play_until_pinned() <= rounds_to_count(n)

    def test_first_round_maximises_width(self):
        # Max round-0 width is n (all nodes on {1,2}).
        adversary = GreedyAmbiguityAdversary(6)
        adversary.play_round()
        assert adversary.width_history[0] == 6

    def test_greedy_schedule_counts_correctly(self):
        schedule = greedy_schedule(7)
        outcome = count_mdbl2_abstract(schedule)
        assert outcome.count == 7

    def test_coordinate_ascent_path(self):
        # Force the fallback with a tiny branch cap; results must still
        # be legal and terminate.
        adversary = GreedyAmbiguityAdversary(6, branch_cap=2)
        rounds = adversary.play_until_pinned()
        assert 1 <= rounds <= rounds_to_count(6)

    def test_validation(self):
        with pytest.raises(ValueError):
            GreedyAmbiguityAdversary(0)


class TestExhaustiveAdversary:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5])
    def test_matches_theory_exactly(self, n):
        assert exhaustive_max_rounds(n) == rounds_to_count(n)

    def test_validation(self):
        with pytest.raises(ValueError):
            exhaustive_max_rounds(0)

    def test_round_cap(self):
        with pytest.raises(RuntimeError, match="raise max_rounds"):
            exhaustive_max_rounds(4, max_rounds=1)
