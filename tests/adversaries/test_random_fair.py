"""Tests for the fair random label adversary."""

from __future__ import annotations

import pytest

from repro.adversaries.random_fair import RandomLabelAdversary
from repro.core.counting.optimal import OptimalLeaderProcess, AnonymousStateProcess
from repro.simulation.labeled import LabeledStarEngine


class TestRandomLabelAdversary:
    def test_valid_label_sets(self):
        adversary = RandomLabelAdversary(3, 10, seed=2)
        for round_no in range(5):
            sets = adversary.label_sets(round_no)
            assert len(sets) == 10
            for labels in sets:
                assert labels
                assert labels <= frozenset({1, 2, 3})

    def test_reproducible_per_round(self):
        adversary = RandomLabelAdversary(2, 6, seed=4)
        assert adversary.label_sets(3) == adversary.label_sets(3)

    def test_varies_across_rounds(self):
        adversary = RandomLabelAdversary(2, 30, seed=4)
        assert adversary.label_sets(0) != adversary.label_sets(1)

    def test_validation(self):
        with pytest.raises(ValueError):
            RandomLabelAdversary(0, 5)
        with pytest.raises(ValueError):
            RandomLabelAdversary(2, 0)

    def test_drives_labeled_engine(self):
        n = 12
        adversary = RandomLabelAdversary(2, n, seed=8)
        leader = OptimalLeaderProcess()
        nodes = [AnonymousStateProcess() for _ in range(n)]
        result = LabeledStarEngine(leader, nodes, adversary, max_rounds=64).run()
        assert result.leader_output == n
