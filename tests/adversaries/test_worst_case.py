"""Tests for the worst-case adversary."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversaries.worst_case import (
    max_ambiguity_multigraph,
    measured_ambiguity_curve,
    worst_case_pd2_network,
)
from repro.core.lowerbound.bounds import ambiguity_horizon, rounds_to_count
from repro.networks.properties import verify_pd


class TestMaxAmbiguityMultigraph:
    @pytest.mark.parametrize("n", [1, 4, 13, 40, 121])
    def test_size(self, n):
        assert max_ambiguity_multigraph(n).n == n

    @given(st.integers(min_value=1, max_value=500))
    @settings(max_examples=40, deadline=None)
    def test_ambiguous_exactly_until_horizon(self, n):
        widths = measured_ambiguity_curve(max_ambiguity_multigraph(n))
        horizon = ambiguity_horizon(n)
        # Ambiguous (width > 0) through the horizon, pinned right after.
        assert all(width > 0 for width in widths[: horizon + 1])
        assert widths[horizon + 1] == 0
        assert len(widths) == rounds_to_count(n)

    def test_schedule_prefix_covers_horizon(self):
        multigraph = max_ambiguity_multigraph(40)
        assert multigraph.prefix_rounds == ambiguity_horizon(40) + 1


class TestWorstCasePD2Network:
    def test_structure(self):
        network, layout = worst_case_pd2_network(13)
        assert layout.n == 16
        assert network.n == 16
        verify_pd(network, layout.leader, 2, rounds=4)

    def test_no_intra_layer_edges(self):
        # The transformation produces the *restricted* PD_2 model, which
        # is what the degree-oracle comparison requires.
        network, layout = worst_case_pd2_network(6)
        graph = network.at(0)
        middles = set(layout.middle)
        outers = set(layout.outer)
        for node in middles:
            assert not middles & set(graph.neighbors(node))
        for node in outers:
            assert not outers & set(graph.neighbors(node))


class TestMeasuredAmbiguityCurve:
    def test_widths_monotone_nonincreasing(self):
        widths = measured_ambiguity_curve(max_ambiguity_multigraph(121))
        assert widths == sorted(widths, reverse=True)

    def test_stops_at_zero(self):
        widths = measured_ambiguity_curve(max_ambiguity_multigraph(5))
        assert widths[-1] == 0
        assert all(width > 0 for width in widths[:-1])
