"""Scenario schema: round-trip fidelity, strict validation, and the
golden-digest guarantee that scenario-compiled requests share cache and
journal identity with hand-built :class:`ExperimentRequest` values."""

from __future__ import annotations

import json

import pytest

from repro.analysis.registry import ExperimentRequest
from repro.analysis.runtime.cache import ResultCache
from repro.analysis.runtime.journal import Journal
from repro.scenarios import (
    SCHEMA_VERSION,
    Scenario,
    ScenarioError,
    load_scenario,
)


def request_key(request: ExperimentRequest) -> str:
    return ResultCache.key(request.experiment, request.effective_params())


class TestRoundTrip:
    def test_to_dict_from_dict_identity(self):
        scenario = Scenario.from_dict(
            {
                "schema_version": 1,
                "name": "star-sweep",
                "experiment": "tab-star-pd1",
                "params": {"sizes": [2, 5]},
                "grid": {"backend": ["object", "fast"]},
                "execution": {"jobs": 2, "retries": 1},
            }
        )
        rebuilt = Scenario.from_dict(scenario.to_dict())
        assert rebuilt == scenario
        assert rebuilt.digest() == scenario.digest()

    def test_to_dict_omits_defaults(self):
        scenario = Scenario(experiment="tab-kernel-structure")
        assert scenario.to_dict() == {
            "schema_version": SCHEMA_VERSION,
            "experiment": "tab-kernel-structure",
        }

    def test_dumps_loads_identity(self):
        scenario = Scenario(
            experiment="tab-star-pd1",
            params={"sizes": [2, 5]},
            grid={"backend": ["object", "fast"]},
        )
        assert Scenario.loads(scenario.dumps()) == scenario

    def test_toml_and_json_agree(self, tmp_path):
        pytest.importorskip("tomllib")  # stdlib from Python 3.11
        json_path = tmp_path / "scenario.json"
        toml_path = tmp_path / "scenario.toml"
        json_path.write_text(
            json.dumps(
                {
                    "schema_version": 1,
                    "experiment": "tab-star-pd1",
                    "params": {"sizes": [2, 5]},
                    "execution": {"backend": "fast"},
                }
            )
        )
        toml_path.write_text(
            'schema_version = 1\n'
            'experiment = "tab-star-pd1"\n'
            '[params]\n'
            'sizes = [2, 5]\n'
            '[execution]\n'
            'backend = "fast"\n'
        )
        from_json = load_scenario(json_path)
        from_toml = load_scenario(toml_path)
        assert from_json == from_toml
        assert from_json.digest() == from_toml.digest()


class TestStrictValidation:
    def test_unknown_schema_version_rejected(self):
        with pytest.raises(ScenarioError, match="schema_version 99"):
            Scenario.from_dict(
                {"schema_version": 99, "experiment": "tab-star-pd1"}
            )

    def test_missing_schema_version_rejected(self):
        with pytest.raises(ScenarioError, match="schema_version"):
            Scenario.from_dict({"experiment": "tab-star-pd1"})

    def test_unknown_top_level_key_named(self):
        with pytest.raises(ScenarioError, match="'bogus'"):
            Scenario.from_dict(
                {
                    "schema_version": 1,
                    "experiment": "tab-star-pd1",
                    "bogus": 1,
                }
            )

    def test_unknown_execution_option_named(self):
        with pytest.raises(ScenarioError, match="'threads'"):
            Scenario.from_dict(
                {
                    "schema_version": 1,
                    "experiment": "tab-star-pd1",
                    "execution": {"threads": 4},
                }
            )

    def test_cli_only_execution_options_rejected(self):
        # --cache-dir / --inject-fault are per-invocation flags, not
        # scenario properties.
        for key in ("cache_dir", "inject_fault"):
            with pytest.raises(ScenarioError, match=key):
                Scenario.from_dict(
                    {
                        "schema_version": 1,
                        "experiment": "tab-star-pd1",
                        "execution": {key: "x"},
                    }
                )

    def test_unknown_experiment_rejected_on_validate(self):
        scenario = Scenario(experiment="tab-nonsense")
        with pytest.raises(ScenarioError, match="tab-nonsense"):
            scenario.validate()

    def test_grid_value_must_be_list(self):
        with pytest.raises(ScenarioError, match="'sizes'"):
            Scenario(experiment="tab-star-pd1", grid={"sizes": 5})

    def test_non_json_param_rejected_at_boundary(self):
        scenario = Scenario(
            experiment="tab-star-pd1", params={"sizes": {2, 5}}
        )
        with pytest.raises(TypeError, match="'sizes'"):
            scenario.validate()

    def test_bad_execution_value_message_scoped(self):
        with pytest.raises(ScenarioError, match="execution: .*jobs"):
            Scenario.from_dict(
                {
                    "schema_version": 1,
                    "experiment": "tab-star-pd1",
                    "execution": {"jobs": 0},
                }
            )


class TestGoldenDigests:
    """Scenario-compiled requests must hit the exact cache/journal keys
    hand-built requests produce -- pinned hex, not just self-consistency,
    so accidental identity changes fail loudly."""

    GOLDEN = {
        ("tab-star-pd1", ()): "5b08dbc5a2e883aa",
        ("tab-star-pd1", (("backend", "fast"),)): "bfbc2b5839a3d461",
        ("tab-star-pd1", (("sizes", (2, 5)),)): "8ae8498c29611f50",
        ("tab-kernel-structure", ()): "7d70001661e76efa",
        (
            "tab-token-dissemination",
            (("backend", "fast"), ("seed", 7)),
        ): "e86e382ade1f66a5",
        (
            "tab-ambiguity-horizon",
            (("jobs", 2), ("sizes", (2, 5, 14))),
        ): "ba30a4bc21e5f538",
    }

    def test_plain_scenario_matches_handwritten(self):
        scenario = Scenario(experiment="tab-star-pd1")
        [request] = scenario.compile()
        assert request == ExperimentRequest("tab-star-pd1")
        assert request_key(request) == self.GOLDEN[("tab-star-pd1", ())]

    def test_execution_backend_matches_handwritten(self):
        scenario = Scenario.from_dict(
            {
                "schema_version": 1,
                "experiment": "tab-star-pd1",
                "execution": {"backend": "fast"},
            }
        )
        [request] = scenario.compile()
        assert request == ExperimentRequest("tab-star-pd1", backend="fast")
        assert (
            request_key(request)
            == self.GOLDEN[("tab-star-pd1", (("backend", "fast"),))]
        )

    def test_json_list_params_share_tuple_digest(self):
        # JSON files can only write lists; json.dumps renders tuples as
        # lists, so the digests coincide by construction -- pinned here.
        scenario = Scenario(
            experiment="tab-star-pd1", params={"sizes": [2, 5]}
        )
        [request] = scenario.compile()
        handwritten = ExperimentRequest(
            "tab-star-pd1", params={"sizes": (2, 5)}
        )
        golden = self.GOLDEN[("tab-star-pd1", (("sizes", (2, 5)),))]
        assert request_key(request) == golden
        assert request_key(handwritten) == golden

    def test_backend_seed_options_match_handwritten(self):
        scenario = Scenario.from_dict(
            {
                "schema_version": 1,
                "experiment": "tab-token-dissemination",
                "execution": {"backend": "fast", "seed": 7},
            }
        )
        [request] = scenario.compile()
        golden = self.GOLDEN[
            ("tab-token-dissemination", (("backend", "fast"), ("seed", 7)))
        ]
        assert request_key(request) == golden

    def test_grid_option_field_matches_handwritten(self):
        scenario = Scenario.from_dict(
            {
                "schema_version": 1,
                "experiment": "tab-ambiguity-horizon",
                "params": {"sizes": [2, 5, 14]},
                "grid": {"jobs": [2]},
            }
        )
        [request] = scenario.compile()
        golden = self.GOLDEN[
            ("tab-ambiguity-horizon", (("jobs", 2), ("sizes", (2, 5, 14))))
        ]
        assert request_key(request) == golden

    def test_task_keys_are_journal_identities(self):
        scenario = Scenario(
            experiment="tab-star-pd1", params={"sizes": [2, 5]}
        )
        [request] = scenario.compile()
        assert scenario.task_keys() == [
            Journal.task_key("tab-star-pd1", request_key(request))
        ]


class TestGridCompilation:
    def test_cartesian_product_order(self):
        scenario = Scenario(
            experiment="tab-star-pd1",
            grid={"backend": ["object", "fast"], "sizes": [[2], [5]]},
        )
        requests = scenario.compile()
        assert [
            (r.backend, tuple(r.params.get("sizes", ()))) for r in requests
        ] == [
            ("object", (2,)),
            ("object", (5,)),
            ("fast", (2,)),
            ("fast", (5,)),
        ]
        # "object" is the engine default: effective_params drops it, so
        # the cache key equals the keyless hand-built request's.
        assert request_key(requests[0]) == request_key(
            ExperimentRequest("tab-star-pd1", params={"sizes": (2,)})
        )

    def test_cache_policy_flows_to_requests(self):
        scenario = Scenario(experiment="tab-star-pd1", cache_policy="off")
        [request] = scenario.compile()
        assert request.cache_policy == "off"

    def test_digest_is_stable_across_equivalent_documents(self):
        a = Scenario.from_dict(
            {"schema_version": 1, "experiment": "tab-star-pd1"}
        )
        b = Scenario.from_dict(
            {
                "schema_version": 1,
                "experiment": "tab-star-pd1",
                "name": "tab-star-pd1",
                "execution": {},
            }
        )
        assert a.digest() == b.digest()


class TestExperimentRequestSerialisation:
    def test_round_trip(self):
        request = ExperimentRequest(
            "tab-token-dissemination",
            params={"sizes": (2, 5)},
            backend="fast",
            seed=7,
            cache_policy="refresh",
        )
        rebuilt = ExperimentRequest.from_dict(
            json.loads(json.dumps(request.to_dict()))
        )
        # Tuples arrive back as lists; identity is via effective_params.
        assert request_key(rebuilt) == request_key(request)
        assert rebuilt.backend == "fast"
        assert rebuilt.seed == 7
        assert rebuilt.cache_policy == "refresh"

    def test_unknown_key_named(self):
        with pytest.raises(ValueError, match="'banana'"):
            ExperimentRequest.from_dict(
                {"experiment": "tab-star-pd1", "banana": 1}
            )
