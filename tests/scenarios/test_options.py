"""The consolidated execution-option surface: one table drives the CLI
flag group and the scenario schema, and this file pins the equivalence
(satellite: "a test asserts the CLI flags and schema fields stay in
lock-step")."""

from __future__ import annotations

import argparse

import pytest

from repro.analysis.runtime.retry import RetryPolicy
from repro.scenarios import (
    EXECUTION_FIELDS,
    ExecutionOptions,
    add_execution_arguments,
    schema_fields,
)

#: The flags that ride in the CLI group but are per-invocation, not
#: scenario properties.
CLI_ONLY = {"cache_dir", "inject_fault"}


def parse(argv: list[str]) -> argparse.Namespace:
    parser = argparse.ArgumentParser()
    add_execution_arguments(parser)
    return parser.parse_args(argv)


class TestCliSchemaEquivalence:
    def test_cli_flags_equal_schema_fields_plus_cli_only(self):
        cli_dests = {spec.name for spec in EXECUTION_FIELDS}
        assert cli_dests == schema_fields() | CLI_ONLY

    def test_schema_fields_equal_dataclass_fields(self):
        assert schema_fields() == set(ExecutionOptions.field_names())

    def test_argparse_dests_match_the_table(self):
        parser = argparse.ArgumentParser()
        add_execution_arguments(parser)
        dests = {
            action.dest
            for action in parser._actions
            if action.dest != "help"
        }
        assert dests == {spec.name for spec in EXECUTION_FIELDS}

    def test_cli_defaults_equal_dataclass_defaults(self):
        args = parse([])
        options = ExecutionOptions.from_namespace(args)
        assert options == ExecutionOptions()

    def test_cli_parse_round_trips_through_options(self):
        args = parse(
            [
                "--backend",
                "fast",
                "--jobs",
                "4",
                "--seed",
                "7",
                "--timeout",
                "30",
                "--retries",
                "1",
                "--max-failures",
                "2",
                "--shard",
                "0/2",
                "--telemetry",
                "every=10",
                "--jit",
                "off",
                "--max-lane-nodes",
                "1000",
                "--resume",
            ]
        )
        options = ExecutionOptions.from_namespace(args)
        # The same document validates through the schema path and lands
        # on the same value: CLI and scenario files are one surface.
        assert ExecutionOptions.from_dict(options.to_dict()) == options
        assert options.backend == "fast"
        assert options.seed == 7
        assert options.shard_tuple() == (0, 2)
        assert options.telemetry_every() == 10

    def test_repro_run_parser_carries_the_shared_group(self):
        # End-to-end through the real CLI parser: every schema field is
        # an attribute of a parsed `repro run` namespace.
        from repro.cli import _build_parser

        args = _build_parser().parse_args(["run", "tab-star-pd1"])
        for name in ExecutionOptions.field_names():
            assert hasattr(args, name), name


class TestExecutionOptionsValidation:
    def test_unknown_key_named(self):
        with pytest.raises(ValueError, match="'threads'"):
            ExecutionOptions.from_dict({"threads": 4})

    def test_bad_backend(self):
        with pytest.raises(ValueError, match="backend"):
            ExecutionOptions(backend="warp")

    def test_bad_jobs(self):
        with pytest.raises(ValueError, match="jobs"):
            ExecutionOptions(jobs=0)

    def test_bad_shard_uses_runtime_parser_message(self):
        with pytest.raises(ValueError, match="shard"):
            ExecutionOptions(shard="2/2")

    def test_bad_telemetry_uses_runtime_parser_message(self):
        with pytest.raises(ValueError):
            ExecutionOptions(telemetry="every=zero")

    def test_retry_policy_delegation(self):
        options = ExecutionOptions(retries=3, timeout=1.5, max_failures=2)
        assert options.retry_policy() == RetryPolicy(
            retries=3, timeout_s=1.5, max_failures=2
        )

    def test_request_backend_normalises_object_to_none(self):
        assert ExecutionOptions().request_backend() is None
        assert ExecutionOptions(backend="fast").request_backend() == "fast"

    def test_to_dict_omits_defaults(self):
        assert ExecutionOptions().to_dict() == {}
        assert ExecutionOptions(jobs=2).to_dict() == {"jobs": 2}
