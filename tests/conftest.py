"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import strategies as st

from repro.core.states import all_label_sets


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator for stochastic tests."""
    return np.random.default_rng(12345)


def label_set_strategy(k: int = 2) -> st.SearchStrategy:
    """Strategy drawing one valid ``M(DBL)_k`` label set."""
    return st.sampled_from(all_label_sets(k))


def history_strategy(
    k: int = 2, min_length: int = 1, max_length: int = 4
) -> st.SearchStrategy:
    """Strategy drawing a label-set history (tuple of label sets)."""
    return st.lists(
        label_set_strategy(k), min_size=min_length, max_size=max_length
    ).map(tuple)


def schedules_strategy(
    k: int = 2,
    min_nodes: int = 1,
    max_nodes: int = 8,
    min_rounds: int = 1,
    max_rounds: int = 4,
) -> st.SearchStrategy:
    """Strategy drawing equal-length label schedules for several nodes."""

    def build(draw_lengths):
        n, rounds = draw_lengths
        return st.lists(
            st.lists(
                label_set_strategy(k), min_size=rounds, max_size=rounds
            ),
            min_size=n,
            max_size=n,
        )

    return st.tuples(
        st.integers(min_value=min_nodes, max_value=max_nodes),
        st.integers(min_value=min_rounds, max_value=max_rounds),
    ).flatmap(build)
