"""The experiment service: submission lifecycle, cache-served repeats
with zero engine work (counter-proved), JSONL event streaming that
stitches to one trace root, and schema-boundary rejections."""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

import pytest

from repro.analysis.registry import ExperimentRequest
from repro.analysis.runtime import ResultCache, run_sweep
from repro.obs.metrics import get_registry
from repro.obs.trace import stitch
from repro.scenarios import Scenario
from repro.service import JobManager, ReproService, ServiceClient, ServiceError

#: A scenario small enough for in-test execution.
SMOKE = {
    "schema_version": 1,
    "name": "smoke",
    "experiment": "tab-star-pd1",
    "params": {"sizes": [2, 5]},
    "execution": {"backend": "fast"},
}


@pytest.fixture
def service(tmp_path):
    instance = ReproService(tmp_path / "state", port=0).start()
    try:
        yield instance
    finally:
        instance.close()


@pytest.fixture
def client(service):
    return ServiceClient(service.url, timeout_s=120.0)


def engine_counters() -> dict[str, float]:
    return {
        name: value
        for name, value in get_registry().snapshot()["counters"].items()
        if name.startswith(("engine.", "runtime."))
    }


class TestJobManager:
    def test_submit_run_and_cache_served(self, tmp_path):
        manager = JobManager(tmp_path / "state")
        try:
            scenario = Scenario.from_dict(SMOKE)
            first = manager.submit(scenario)
            assert first["state"] == "queued"
            job = manager.wait(first["job"], timeout_s=120)
            assert job.state == "completed"
            assert job.status()["passed"] is True
            assert [r["experiment"] for r in job.results] == ["tab-star-pd1"]

            before = engine_counters()
            second = manager.submit(scenario)
            assert second["state"] == "cached"
            assert second["job"] is None
            assert [r["experiment"] for r in second["results"]] == [
                "tab-star-pd1"
            ]
            # Zero engine work on the repeat: the counters are the proof.
            assert engine_counters() == before
        finally:
            manager.shutdown()

    def test_non_json_params_rejected_before_queueing(self, tmp_path):
        manager = JobManager(tmp_path / "state")
        try:
            scenario = Scenario(
                experiment="tab-star-pd1", params={"sizes": {2, 5}}
            )
            with pytest.raises(TypeError, match="'sizes'"):
                manager.submit(scenario)
            assert manager.list_jobs() == []  # nothing reached the queue
        finally:
            manager.shutdown()

    def test_cache_prepopulated_by_handwritten_request(self, tmp_path):
        """A scenario submission is served from cache entries written
        by a hand-built sweep: compiled identity is byte-identical."""
        state_dir = tmp_path / "state"
        cache = ResultCache(state_dir / "cache")
        run_sweep(
            [
                ExperimentRequest(
                    "tab-star-pd1",
                    params={"sizes": (2, 5)},
                    backend="fast",
                )
            ],
            cache=cache,
        )
        manager = JobManager(state_dir)
        try:
            submission = manager.submit(Scenario.from_dict(SMOKE))
            assert submission["state"] == "cached"
        finally:
            manager.shutdown()

    def test_failed_job_survives_worker(self, tmp_path):
        manager = JobManager(tmp_path / "state")
        try:
            bad = Scenario(
                experiment="tab-star-pd1", params={"sizes": "nonsense"}
            )
            submission = manager.submit(bad)
            job = manager.wait(submission["job"], timeout_s=120)
            assert job.state == "failed"
            assert job.error
            # The worker thread is still alive and takes the next job.
            ok = manager.submit(Scenario.from_dict(SMOKE))
            assert manager.wait(ok["job"], timeout_s=120).state == "completed"
        finally:
            manager.shutdown()


class TestHttpService:
    def test_healthz_and_experiments(self, client):
        assert client.healthz()["status"] == "ok"
        assert "tab-star-pd1" in client.experiments()

    def test_submit_wait_result_and_cache_served(self, service, client):
        first = client.submit(SMOKE)
        assert first["state"] == "queued"
        job_id = first["job"]
        final = client.wait(job_id)
        assert final["state"] == "completed"
        assert final["passed"] is True

        result = client.result(job_id)
        assert [r["experiment"] for r in result["results"]] == [
            "tab-star-pd1"
        ]
        assert all(
            all(r["checks"].values()) for r in result["results"]
        )

        before = {
            name: value
            for name, value in client.metrics()["counters"].items()
            if name.startswith(("engine.", "runtime."))
        }
        def stable(results):
            # Timing/cache-hit notes are run-dependent; rows and checks
            # are the payload identity.
            return [
                {k: v for k, v in r.items() if k != "notes"}
                for r in results
            ]

        second = client.submit(SMOKE)
        assert second["state"] == "cached"
        assert stable(second["results"]) == stable(result["results"])
        after = {
            name: value
            for name, value in client.metrics()["counters"].items()
            if name.startswith(("engine.", "runtime."))
        }
        assert after == before

    def test_event_stream_stitches_to_single_trace_root(
        self, service, client
    ):
        submission = client.submit(
            {**SMOKE, "name": "traced", "cache_policy": "refresh"}
        )
        job_id = submission["job"]
        events = list(client.stream_events(job_id, follow=True))
        assert events, "stream yielded no events"
        traces = stitch(events)
        assert len(traces) == 1  # every event shares one trace_id
        [trace] = traces
        assert [root.name for root in trace.roots] == ["service.job"]
        client.wait(job_id)

    def test_follow_closes_on_finished_job_with_torn_tail(
        self, service, client
    ):
        # Regression: a finished job whose events file ends in a torn
        # line (no trailing newline) used to busy-spin the follow
        # handler forever -- the "whole lines only" cut never advanced
        # and the done-and-drained exit never fired.  The stream must
        # flush the partial tail and close within a poll interval.
        submission = client.submit(
            {**SMOKE, "name": "torn-tail", "cache_policy": "refresh"}
        )
        job_id = submission["job"]
        client.wait(job_id)
        job = service.manager.get(job_id)
        with open(job.events_path, "a", encoding="utf-8") as stream:
            stream.write('{"event": "torn"}')  # deliberately no newline
        start = time.monotonic()
        with urllib.request.urlopen(
            f"{service.url}/jobs/{job_id}/events?follow=1", timeout=30
        ) as response:
            body = response.read()
        assert time.monotonic() - start < 5.0
        assert body.endswith(b'{"event": "torn"}')
        # Everything before the torn tail arrived as intact JSONL.
        whole, _, tail = body.rpartition(b"\n")
        assert json.loads(tail) == {"event": "torn"}
        for line in whole.splitlines():
            json.loads(line)

    def test_unknown_scenario_key_is_http_400(self, client):
        with pytest.raises(ServiceError, match="'bogus'") as err:
            client.submit({**SMOKE, "bogus": 1})
        assert err.value.status == 400

    def test_unsupported_version_is_http_400(self, client):
        with pytest.raises(ServiceError, match="schema_version 99") as err:
            client.submit({**SMOKE, "schema_version": 99})
        assert err.value.status == 400

    def test_unknown_job_is_http_404(self, client):
        with pytest.raises(ServiceError, match="job-9999") as err:
            client.job("job-9999")
        assert err.value.status == 404

    def test_unknown_endpoint_is_http_404(self, service):
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(f"{service.url}/nonsense")
        assert err.value.code == 404

    def test_invalid_json_body_is_http_400(self, service):
        request = urllib.request.Request(
            f"{service.url}/scenarios",
            data=b"{not json",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request)
        assert err.value.code == 400
        assert "invalid JSON" in json.loads(err.value.read())["error"]

    def test_jobs_listing(self, service, client):
        submission = client.submit(
            {**SMOKE, "name": "listed", "cache_policy": "refresh"}
        )
        listed = client.jobs()
        assert any(job["job"] == submission["job"] for job in listed)
        client.wait(submission["job"])
