"""Cross-cutting invariants, property-tested.

These tests pin down guarantees no single module owns: conservation
laws of the engine, determinism of whole executions, and the solver's
behaviour on *corrupted* observations (failure injection).
"""

from __future__ import annotations

from collections import Counter

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.solver import (
    feasible_size_interval,
    feasible_size_set_bruteforce,
)
from repro.core.states import ObservationSequence
from repro.networks.generators.random_dynamic import (
    RandomConnectedAdversary,
    random_connected_graph,
)
from repro.networks.multigraph import DynamicMultigraph
from repro.simulation.engine import EngineConfig, SynchronousEngine
from repro.simulation.errors import InfeasibleObservationError
from repro.simulation.node import Process
from repro.simulation.trace import TraceLevel

from tests.conftest import schedules_strategy


class BroadcastEverything(Process):
    """Broadcasts a growing transcript; used to test conservation."""

    def __init__(self):
        self.transcript: tuple = ()

    def compose(self, round_no):
        return ("t", len(self.transcript))

    def deliver(self, round_no, inbox):
        self.transcript = self.transcript + (inbox.counts().total(),)


class TestEngineConservation:
    @given(
        st.integers(min_value=2, max_value=12),
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=25, deadline=None)
    def test_deliveries_equal_degree_sum(self, n, rounds, seed):
        """Every broadcast is delivered exactly degree-many times."""
        adversary = RandomConnectedAdversary(n, seed=seed)
        processes = [BroadcastEverything() for _ in range(n)]
        engine = SynchronousEngine(
            processes,
            adversary,
            leader=None,
            config=EngineConfig(
                max_rounds=rounds,
                stop_when="budget",
                trace_level=TraceLevel.TOPOLOGY,
            ),
        )
        result = engine.run()
        for record in result.trace:
            degree_sum = sum(
                degree for _node, degree in record.graph.degree()
            )
            assert record.messages_delivered == degree_sum
            assert record.messages_sent == n

    @given(
        st.integers(min_value=2, max_value=10),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=20, deadline=None)
    def test_executions_are_deterministic(self, n, seed):
        """Same protocol + same adversary => identical transcripts."""

        def run_once():
            processes = [BroadcastEverything() for _ in range(n)]
            engine = SynchronousEngine(
                processes,
                RandomConnectedAdversary(n, seed=seed),
                leader=None,
                config=EngineConfig(max_rounds=4, stop_when="budget"),
            )
            engine.run()
            return [process.transcript for process in processes]

        assert run_once() == run_once()


class TestSolverFailureInjection:
    @given(
        schedules_strategy(max_nodes=5, max_rounds=3),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=40, deadline=None)
    def test_corrupted_observations_tree_matches_bruteforce(
        self, schedules, seed
    ):
        """Randomly perturb a real leader state: both solvers must agree
        -- including on infeasibility."""
        multigraph = DynamicMultigraph(2, schedules)
        rounds = multigraph.prefix_rounds
        observations = multigraph.observations(rounds)
        rng = np.random.default_rng(seed)
        corrupted_rounds = []
        for round_no in range(rounds):
            observation = Counter(observations[round_no])
            if observation and rng.random() < 0.7:
                key = list(observation)[int(rng.integers(len(observation)))]
                delta = int(rng.integers(-2, 3))
                observation[key] = max(0, observation[key] + delta)
                observation += Counter()  # drop zero entries
            corrupted_rounds.append(observation)
        corrupted = ObservationSequence(2, corrupted_rounds)

        try:
            interval = feasible_size_interval(corrupted)
            tree_sizes = set(interval)
        except InfeasibleObservationError:
            tree_sizes = set()
        brute_sizes = feasible_size_set_bruteforce(corrupted)
        assert tree_sizes == brute_sizes

    def test_round0_label_imbalance_still_solvable(self):
        observations = ObservationSequence(2, [{(1, ()): 7}])
        assert feasible_size_interval(observations).is_unique

    def test_phantom_state_detected(self):
        # Round 1 reports a node whose round-0 history never appeared.
        observations = ObservationSequence(
            2,
            [
                {(1, ()): 1},
                {(2, (frozenset({2}),)): 1, (1, (frozenset({1}),)): 1},
            ],
        )
        with pytest.raises(InfeasibleObservationError):
            feasible_size_interval(observations)


class TestGraphLevelInvariants:
    @given(
        st.integers(min_value=2, max_value=20),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=30, deadline=None)
    def test_random_connected_graph_is_connected_and_simple(self, n, seed):
        graph = random_connected_graph(n, np.random.default_rng(seed))
        assert nx.is_connected(graph)
        assert not any(u == v for u, v in graph.edges())

    @given(schedules_strategy(max_nodes=6, max_rounds=3))
    @settings(max_examples=25, deadline=None)
    def test_observation_prefix_consistency(self, schedules):
        """The observation sequence of r rounds is a prefix of that of
        r+1 rounds -- the leader's knowledge only grows."""
        multigraph = DynamicMultigraph(2, schedules)
        rounds = multigraph.prefix_rounds
        longer = multigraph.observations(rounds)
        for shorter_rounds in range(1, rounds):
            shorter = multigraph.observations(shorter_rounds)
            assert longer.prefix(shorter_rounds) == shorter

    @given(schedules_strategy(max_nodes=6, max_rounds=3))
    @settings(max_examples=25, deadline=None)
    def test_interval_width_never_increases(self, schedules):
        """More observations can only shrink the feasible set."""
        multigraph = DynamicMultigraph(2, schedules)
        widths = []
        for rounds in range(1, multigraph.prefix_rounds + 1):
            widths.append(
                feasible_size_interval(
                    multigraph.observations(rounds)
                ).width
            )
        assert widths == sorted(widths, reverse=True)
