"""End-to-end crash/resume acceptance test.

A fault-injected ``repro all --jobs 4`` run (worker killed mid-sweep,
no retry budget) must abort; ``repro all --resume`` must then finish
the sweep **without re-executing any completed task** and render
exactly what an uninterrupted run renders, modulo timings and cache
notes.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.runtime import WorkerCrash
from repro.cli import main

#: Enough tiny experiments that a --jobs 4 sweep is genuinely
#: mid-flight when task 4 is struck: the kill target only spawns after
#: a pool slot frees up, i.e. after at least one task has completed.
EXPERIMENTS = [
    "fig1-pd2-example",
    "fig2-transformation",
    "fig3-indistinguishable-r0",
    "fig4-indistinguishable-r1",
    "tab-kernel-structure",
    "tab-star-pd1",
]


def _shrink_registry(monkeypatch):
    import repro.cli as cli_mod

    monkeypatch.setattr(
        cli_mod, "available_experiments", lambda: list(EXPERIMENTS)
    )


#: Run-dependent line prefixes: timings and cache-hit notes (in both
#: the CLI ``note:`` rendering and the report's ``- `` bullets), and
#: the ``all`` command's provenance lines.
_VOLATILE = (
    "note: timing:",
    "note: cache: hit",
    "- timing:",
    "- cache: hit",
    "provenance:",
)


def _normalize(report: str) -> str:
    """Strip run-dependent lines: timings, cache-hit notes, and the
    provenance section (which intentionally differs on a resumed run)."""
    lines = []
    in_provenance = False
    for line in report.splitlines():
        if line.startswith("## "):
            in_provenance = line == "## Run provenance"
        elif line.startswith("---"):
            in_provenance = False
        if in_provenance or line.startswith(_VOLATILE):
            continue
        lines.append(line)
    return "\n".join(lines)


def _counters(path) -> dict[str, int]:
    return json.loads(path.read_text())["counters"]


class TestCrashResumeEquivalence:
    def test_resumed_all_matches_uninterrupted(self, tmp_path, monkeypatch, capsys):
        _shrink_registry(monkeypatch)
        cache_dir = tmp_path / "cache"
        base = ["all", "--jobs", "4", "--cache-dir", str(cache_dir)]

        # Uninterrupted reference run (separate cache: no sharing).
        assert (
            main(
                [
                    "all",
                    "--jobs",
                    "4",
                    "--cache-dir",
                    str(tmp_path / "reference-cache"),
                ]
            )
            == 0
        )
        reference = capsys.readouterr().out

        # Crash mid-sweep: worker killed on task 4, no retries, no
        # failure budget -> the sweep aborts with the crash.
        with pytest.raises(WorkerCrash):
            main([*base, "--inject-fault", "kill@4", "--retries", "0"])
        capsys.readouterr()
        journal = cache_dir / "journal.jsonl"
        assert journal.exists()
        events = [json.loads(line) for line in journal.read_text().splitlines()]
        completed = {
            event["task"] for event in events if event["event"] == "completed"
        }
        # The kill target spawned only after a slot freed up, so the
        # crash really was mid-sweep: some tasks done, not all.
        assert 1 <= len(completed) < len(EXPERIMENTS)
        assert any(event["event"] == "aborted" for event in events)

        # Resume: completed tasks skipped, the rest (re-)run.
        metrics_path = tmp_path / "resume-metrics.json"
        assert (
            main([*base, "--resume", "--metrics-out", str(metrics_path)]) == 0
        )
        resumed = capsys.readouterr().out

        counters = _counters(metrics_path)
        assert counters["runtime.resume.skipped"] == len(completed)
        # Zero re-execution of completed tasks: only the remainder ran.
        assert counters["experiments.run"] == len(EXPERIMENTS) - len(completed)
        assert "resumed:" in resumed

        # Byte-equivalent output modulo timings/cache notes/provenance.
        assert _normalize(resumed) == _normalize(reference)
        assert "PASS" in resumed and "FAIL" not in resumed

    def test_resume_requires_cache_dir(self):
        with pytest.raises(SystemExit, match="--resume requires --cache-dir"):
            main(["all", "--resume"])

    def test_bad_fault_spec_rejected(self):
        with pytest.raises(SystemExit, match="inject-fault"):
            main(["all", "--inject-fault", "kill@x"])

    def test_resumed_report_matches_uninterrupted(self, tmp_path, monkeypatch, capsys):
        """Same guarantee through ``repro report``: the resumed report
        file equals the uninterrupted one modulo timings/cache notes."""
        _shrink_registry(monkeypatch)
        cache_dir = tmp_path / "cache"
        reference_path = tmp_path / "reference.md"
        resumed_path = tmp_path / "resumed.md"
        assert main(["report", str(reference_path), "--jobs", "4"]) == 0
        with pytest.raises(WorkerCrash):
            main(
                [
                    "report",
                    str(resumed_path),
                    "--jobs",
                    "4",
                    "--cache-dir",
                    str(cache_dir),
                    "--inject-fault",
                    "kill@4",
                    "--retries",
                    "0",
                ]
            )
        assert (
            main(
                [
                    "report",
                    str(resumed_path),
                    "--jobs",
                    "4",
                    "--cache-dir",
                    str(cache_dir),
                    "--resume",
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert _normalize(resumed_path.read_text()) == _normalize(
            reference_path.read_text()
        )
        assert "all experiments passed" in resumed_path.read_text()
