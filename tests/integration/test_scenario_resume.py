"""Crash/resume driven entirely from a scenario file.

The sweep definition -- grid, concurrency, retry budget -- lives in a
JSON scenario document; the CLI only points at it.  A fault-injected
``repro scenario run`` must abort mid-sweep, leave a digest-keyed
journal behind, and a ``--resume`` rerun of the *same file* must finish
without re-executing any completed task.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.runtime import WorkerCrash
from repro.cli import main
from repro.scenarios import load_scenario

#: Six grid points so a --jobs 4 sweep is genuinely mid-flight when
#: task 4 is struck (the kill target only spawns after a slot frees).
SCENARIO = {
    "schema_version": 1,
    "name": "resume-sweep",
    "experiment": "tab-star-pd1",
    "grid": {"sizes": [[2], [3], [4], [5], [6], [7]]},
    "execution": {"jobs": 4, "retries": 0},
}


class TestScenarioCrashResume:
    def test_scenario_file_sweep_crashes_and_resumes(self, tmp_path, capsys):
        scenario_path = tmp_path / "sweep.json"
        scenario_path.write_text(json.dumps(SCENARIO))
        cache_dir = tmp_path / "cache"
        digest = load_scenario(scenario_path).digest()
        base = ["scenario", "run", str(scenario_path), "--cache-dir", str(cache_dir)]

        # Crash mid-sweep: worker killed on task 4, retries=0 comes
        # from the scenario file itself.
        with pytest.raises(WorkerCrash):
            main([*base, "--inject-fault", "kill@4"])
        capsys.readouterr()

        journal = cache_dir / f"scenario-{digest}.journal.jsonl"
        assert journal.exists()
        events = [
            json.loads(line) for line in journal.read_text().splitlines()
        ]
        completed = {
            event["task"] for event in events if event["event"] == "completed"
        }
        total = len(SCENARIO["grid"]["sizes"])
        assert 1 <= len(completed) < total
        assert any(event["event"] == "aborted" for event in events)

        # Resume the same file: completed grid points skipped.
        metrics_path = tmp_path / "metrics.json"
        assert (
            main([*base, "--resume", "--metrics-out", str(metrics_path)])
            == 0
        )
        out = capsys.readouterr().out
        counters = json.loads(metrics_path.read_text())["counters"]
        assert counters["runtime.resume.skipped"] == len(completed)
        assert counters["experiments.run"] == total - len(completed)
        assert "resumed:" in out
        assert "FAIL" not in out

    def test_scenario_resume_requires_cache_dir(self, tmp_path):
        scenario_path = tmp_path / "sweep.json"
        scenario_path.write_text(json.dumps(SCENARIO))
        with pytest.raises(SystemExit, match="--resume requires --cache-dir"):
            main(["scenario", "run", str(scenario_path), "--resume"])

    def test_invalid_scenario_file_is_clean_exit(self, tmp_path):
        scenario_path = tmp_path / "bad.json"
        scenario_path.write_text(
            json.dumps({**SCENARIO, "schema_version": 99})
        )
        with pytest.raises(SystemExit, match="schema_version 99"):
            main(["scenario", "run", str(scenario_path)])

    def test_validate_reports_digest_and_tasks(self, tmp_path, capsys):
        scenario_path = tmp_path / "sweep.json"
        scenario_path.write_text(json.dumps(SCENARIO))
        assert main(["scenario", "validate", str(scenario_path)]) == 0
        out = capsys.readouterr().out
        assert "6 task(s)" in out
        assert load_scenario(scenario_path).digest() in out

    def test_validate_invalid_file_exit_code(self, tmp_path, capsys):
        scenario_path = tmp_path / "bad.json"
        scenario_path.write_text(json.dumps({**SCENARIO, "bogus": True}))
        assert main(["scenario", "validate", str(scenario_path)]) == 1
        assert "'bogus'" in capsys.readouterr().out
