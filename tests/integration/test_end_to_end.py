"""Cross-module integration tests.

These tie the whole stack together: worst-case schedules built from the
kernel, lifted through the Lemma 1 transformation, executed through the
anonymous message-passing engine, solved by the exact interval solver --
and the measured rounds compared against the closed-form bounds.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversaries.worst_case import max_ambiguity_multigraph
from repro.core.counting.degree_oracle import count_pd2_with_degree_oracle
from repro.core.counting.optimal import count_mdbl2, count_mdbl2_abstract
from repro.core.counting.token_ids import count_with_ids
from repro.core.lowerbound.bounds import (
    ambiguity_horizon,
    min_output_round,
    rounds_to_count,
)
from repro.core.lowerbound.kernel import closed_form_kernel
from repro.core.lowerbound.matrices import (
    build_matrix,
    configuration_vector,
)
from repro.core.lowerbound.pairs import twin_multigraphs
from repro.core.solver import feasible_size_interval
from repro.networks.multigraph import DynamicMultigraph
from repro.networks.properties import dynamic_diameter
from repro.networks.transform import mdbl_to_pd2

from tests.conftest import schedules_strategy

import numpy as np


class TestLowerBoundPipeline:
    """Theorem 1/2 as a full pipeline: adversary -> engine -> solver."""

    @given(st.integers(min_value=1, max_value=200))
    @settings(max_examples=25, deadline=None)
    def test_no_early_output_and_tight_termination(self, n):
        adversary = max_ambiguity_multigraph(n)
        outcome = count_mdbl2_abstract(adversary)
        assert outcome.count == n
        # Theorem 1: no output strictly before min_output_round.
        assert outcome.output_round >= min_output_round(n)
        # The optimal algorithm is tight against this adversary.
        assert outcome.rounds == rounds_to_count(n)

    @pytest.mark.parametrize("n", [4, 13, 40])
    def test_twin_executions_identical_through_engine(self, n):
        """Run both twins through the real labeled engine and compare
        the leader's actual observation sequences."""
        from repro.core.counting.optimal import (
            AnonymousStateProcess,
            OptimalLeaderProcess,
        )
        from repro.simulation.labeled import LabeledStarEngine

        horizon = ambiguity_horizon(n)
        leaders = []
        for multigraph in twin_multigraphs(horizon, n):
            leader = OptimalLeaderProcess()
            nodes = [AnonymousStateProcess() for _ in range(multigraph.n)]
            LabeledStarEngine(
                leader,
                nodes,
                multigraph,
                max_rounds=horizon + 1,
                stop_when="budget",
            ).run()
            leaders.append(leader)
        assert leaders[0].observations == leaders[1].observations
        # And both leaders' solver intervals still contain both sizes.
        for leader in leaders:
            interval = feasible_size_interval(leader.observations)
            assert n in interval and (n + 1) in interval


class TestSolverMatrixConsistency:
    """The tree solver and the dense matrix view agree."""

    @given(schedules_strategy(max_nodes=6, min_rounds=1, max_rounds=3))
    @settings(max_examples=30, deadline=None)
    def test_kernel_shift_preserves_observations(self, schedules):
        multigraph = DynamicMultigraph(2, schedules)
        r = multigraph.prefix_rounds - 1
        s = configuration_vector(multigraph.configuration(r + 1), r)
        kernel = closed_form_kernel(r)
        shifted = s + kernel
        if (shifted < 0).any():
            return  # the shift leaves the non-negative orthant
        matrix = build_matrix(r)
        assert np.array_equal(matrix @ s, matrix @ shifted)
        # The solver must consider both sizes feasible.
        interval = feasible_size_interval(multigraph.observations(r + 1))
        assert multigraph.n in interval
        assert multigraph.n + 1 in interval

    @given(schedules_strategy(max_nodes=5, min_rounds=1, max_rounds=3))
    @settings(max_examples=30, deadline=None)
    def test_interval_width_equals_lattice_range(self, schedules):
        """The solver interval matches the number of kernel steps that
        stay in the non-negative orthant (kernel dim 1 => the solution
        set is a segment)."""
        multigraph = DynamicMultigraph(2, schedules)
        r = multigraph.prefix_rounds - 1
        s = configuration_vector(multigraph.configuration(r + 1), r)
        kernel = closed_form_kernel(r)
        steps_up = 0
        while not ((s + (steps_up + 1) * kernel) < 0).any():
            steps_up += 1
        steps_down = 0
        while not ((s - (steps_down + 1) * kernel) < 0).any():
            steps_down += 1
        interval = feasible_size_interval(multigraph.observations(r + 1))
        assert interval.width == steps_up + steps_down
        assert interval.lo == multigraph.n - steps_down
        assert interval.hi == multigraph.n + steps_up


class TestThreeAlgorithmsOneNetwork:
    """Oracle, IDs and the anonymous counter on the same dynamics."""

    @pytest.mark.parametrize("n", [4, 13])
    def test_all_exact_with_expected_costs(self, n):
        adversary = max_ambiguity_multigraph(n)
        network, layout = mdbl_to_pd2(adversary)

        anonymous = count_mdbl2(adversary)
        oracle = count_pd2_with_degree_oracle(network)
        d = dynamic_diameter(network, start_rounds=2)
        with_ids = count_with_ids(network, d)

        assert anonymous.count == n
        assert oracle.count == layout.n == n + 3
        assert with_ids.count == layout.n

        assert oracle.rounds == 3
        assert with_ids.rounds == d <= 4
        assert anonymous.rounds == rounds_to_count(n)
        # The anonymity cost grows with n while the oracle stays at 3
        # rounds; at n = 13 the gap is already strict.
        assert anonymous.rounds >= oracle.rounds
        if n >= 13:
            assert anonymous.rounds > oracle.rounds
