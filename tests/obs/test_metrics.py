"""Tests for the metrics registry and its merge algebra."""

from __future__ import annotations

from repro.obs.metrics import (
    MetricsRegistry,
    counter,
    gauge,
    get_registry,
    observe,
    use_registry,
)


def _worker_registry(seed: int) -> MetricsRegistry:
    """A registry as a pool worker would produce it (distinct per seed)."""
    registry = MetricsRegistry()
    with use_registry(registry):
        counter("engine.rounds", 3 + seed)
        counter(f"only.worker{seed}")
        gauge("sparse.nnz", 100 * (seed + 1))
        observe("span.experiment.run.s", 0.5 * (seed + 1))
        observe("span.experiment.run.s", 0.1)
    return registry


class TestRegistryBasics:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        registry.counter("x")
        registry.counter("x", 4)
        assert registry.value("x") == 5
        assert registry.value("never") == 0

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        registry.gauge("g", 1)
        registry.gauge("g", 7)
        assert registry.snapshot()["gauges"]["g"] == 7

    def test_histogram_stats(self):
        registry = MetricsRegistry()
        for value in (2.0, 5.0, 3.0):
            registry.observe("h", value)
        hist = registry.snapshot()["histograms"]["h"]
        assert hist["count"] == 3
        assert hist["total"] == 10.0
        assert hist["min"] == 2.0
        assert hist["max"] == 5.0

    def test_snapshot_roundtrip(self):
        registry = _worker_registry(0)
        clone = MetricsRegistry.from_snapshot(registry.snapshot())
        assert clone.snapshot() == registry.snapshot()

    def test_snapshot_is_a_copy(self):
        registry = MetricsRegistry()
        registry.counter("x")
        snapshot = registry.snapshot()
        registry.counter("x")
        assert snapshot["counters"]["x"] == 1

    def test_clear(self):
        registry = _worker_registry(1)
        registry.clear()
        assert registry.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }


class TestMergeAlgebra:
    def test_merge_adds_counters_and_combines_histograms(self):
        a = _worker_registry(0)
        a.merge(_worker_registry(1))
        snapshot = a.snapshot()
        assert snapshot["counters"]["engine.rounds"] == 3 + 4
        assert snapshot["counters"]["only.worker0"] == 1
        assert snapshot["counters"]["only.worker1"] == 1
        hist = snapshot["histograms"]["span.experiment.run.s"]
        assert hist["count"] == 4
        assert hist["min"] == 0.1
        assert hist["max"] == 1.0

    def test_merge_accepts_registry_or_snapshot(self):
        via_registry = MetricsRegistry()
        via_registry.merge(_worker_registry(2))
        via_snapshot = MetricsRegistry()
        via_snapshot.merge(_worker_registry(2).snapshot())
        assert via_registry.snapshot() == via_snapshot.snapshot()

    def test_merge_associative_across_simulated_pool_workers(self):
        """Acceptance: worker registries fold in any grouping."""
        workers = [_worker_registry(seed) for seed in range(3)]

        left = MetricsRegistry()  # (a + b) + c
        left.merge(workers[0])
        left.merge(workers[1])
        left.merge(workers[2])

        bc = MetricsRegistry()  # a + (b + c)
        bc.merge(workers[1])
        bc.merge(workers[2])
        right = MetricsRegistry()
        right.merge(workers[0])
        right.merge(bc)

        assert left.snapshot() == right.snapshot()

    def test_merge_into_empty_is_identity(self):
        worker = _worker_registry(1)
        merged = MetricsRegistry()
        merged.merge(worker)
        assert merged.snapshot() == worker.snapshot()


class TestCurrentRegistry:
    def test_module_helpers_hit_current_registry(self):
        before = get_registry().value("helper.test")
        counter("helper.test")
        assert get_registry().value("helper.test") == before + 1

    def test_use_registry_isolates_and_restores(self):
        outer = get_registry()
        scratch = MetricsRegistry()
        with use_registry(scratch):
            assert get_registry() is scratch
            counter("isolated")
            with use_registry(MetricsRegistry()) as inner:
                counter("isolated")
                assert inner.value("isolated") == 1
            assert get_registry() is scratch
        assert get_registry() is outer
        assert scratch.value("isolated") == 1
        assert outer.value("isolated") == 0

    def test_use_registry_restores_on_exception(self):
        outer = get_registry()
        try:
            with use_registry(MetricsRegistry()):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert get_registry() is outer
