"""Tests for the bench trajectory schema and regression report."""

from __future__ import annotations

import json

import pytest

from repro.obs.bench import (
    SCHEMA_VERSION,
    append_record,
    compare_latest,
    load_trajectory,
    make_record,
    render_report,
)

WORKLOADS = {
    "flooding (static)": [
        {"n": 64, "runs": 2, "object_s": 1.0, "fast_s": 0.1, "speedup": 10.0},
        {"n": 256, "runs": 2, "object_s": 4.0, "fast_s": 0.2, "speedup": 20.0},
    ],
    "gossip (static)": [
        {"n": 256, "runs": 2, "object_s": 2.0, "fast_s": 0.25, "speedup": 8.0},
    ],
}


def _record(speedup: float, mode: str = "quick") -> dict:
    workloads = {
        name: [dict(rows[-1], speedup=speedup)]
        for name, rows in WORKLOADS.items()
    }
    return make_record(
        mode=mode, workloads=workloads, wall_s=1.0, git_rev="abc1234"
    )


class TestRecord:
    def test_schema_fields(self):
        record = make_record(
            mode="quick", workloads=WORKLOADS, wall_s=12.5, git_rev="abc1234"
        )
        assert record["schema"] == SCHEMA_VERSION
        assert record["mode"] == "quick"
        assert record["git_rev"] == "abc1234"
        assert record["wall_s"] == 12.5
        assert record["recorded_at"] > 0
        assert record["python"].count(".") == 2
        # Only the largest size of each workload is summarised.
        flooding = record["workloads"]["flooding (static)"]
        assert flooding["n"] == 256
        assert flooding["speedup"] == 20.0

    def test_git_rev_autodetected_in_repo(self, tmp_path):
        record = make_record(
            mode="quick", workloads={}, wall_s=0.0, cwd=str(tmp_path)
        )
        assert record["git_rev"] is None  # tmp_path is not a checkout


class TestTrajectory:
    def test_append_and_load_roundtrip(self, tmp_path):
        path = tmp_path / "BENCH_trajectory.json"
        assert load_trajectory(path) == []
        assert append_record(_record(10.0), path) == 1
        assert append_record(_record(11.0), path) == 2
        runs = load_trajectory(path)
        assert len(runs) == 2
        payload = json.loads(path.read_text())
        assert payload["schema"] == SCHEMA_VERSION
        assert "description" in payload

    def test_load_rejects_non_trajectory(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text('{"counters": {}}')
        with pytest.raises(ValueError):
            load_trajectory(path)

    @pytest.mark.parametrize(
        "name", ["BENCH_trajectory.json", "BENCH_scale.json"]
    )
    def test_committed_trajectories_parse(self, name):
        # The committed trajectories must load, and every record must
        # carry the fields compare_latest keys on.
        from pathlib import Path

        path = Path(__file__).parents[2] / "benchmarks" / name
        runs = load_trajectory(path)
        assert runs, f"{name} should hold at least one real record"
        for record in runs:
            assert record["schema"] == SCHEMA_VERSION
            assert record["mode"] in ("quick", "full")
            assert record["workloads"]
            for workload in record["workloads"].values():
                assert workload["speedup"] > 0


class TestCompare:
    def test_improvement_is_ok(self):
        rows, status = compare_latest([_record(10.0), _record(12.0)])
        assert status == 0
        assert all(row["verdict"] == "ok" for row in rows)

    def test_regression_flagged(self):
        rows, status = compare_latest(
            [_record(10.0), _record(5.0)], threshold=0.8
        )
        assert status == 1
        assert all(row["verdict"] == "REGRESSION" for row in rows)
        assert rows[0]["ratio"] == pytest.approx(0.5)

    def test_threshold_tolerates_noise(self):
        _, status = compare_latest([_record(10.0), _record(9.0)], threshold=0.8)
        assert status == 0

    def test_baseline_must_match_mode(self):
        runs = [_record(10.0, mode="full"), _record(5.0, mode="quick")]
        rows, status = compare_latest(runs)
        assert status == 0  # no same-mode baseline: everything is "new"
        assert all(row["verdict"] == "new" for row in rows)

    def test_empty(self):
        assert compare_latest([]) == ([], 0)


class TestRenderReport:
    def test_missing_trajectory(self, tmp_path):
        text, status = render_report(tmp_path / "nope.json")
        assert status == 0  # no history is a clean state, not a failure
        assert "no benchmark runs" in text
        assert "bench_engine.py" in text  # says how to record the first

    def test_single_run(self, tmp_path):
        path = tmp_path / "t.json"
        append_record(_record(10.0), path)
        text, status = render_report(path)
        assert status == 0
        assert "nothing to diff" in text

    def test_regression_rendered(self, tmp_path):
        path = tmp_path / "t.json"
        append_record(_record(10.0), path)
        append_record(_record(5.0), path)
        text, status = render_report(path, threshold=0.8)
        assert status == 1
        assert "REGRESSION" in text
        assert "abc1234" in text

    def test_mode_filter(self, tmp_path):
        path = tmp_path / "t.json"
        append_record(_record(10.0, mode="full"), path)
        append_record(_record(5.0, mode="quick"), path)
        text, status = render_report(path, mode="full")
        assert status == 0
        assert "1 run(s)" in text
