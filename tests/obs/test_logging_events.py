"""Tests for structured logging, engine round events, and `repro stats`."""

from __future__ import annotations

import json
import logging

import networkx as nx
import pytest

from repro.core.counting.star import make_star_processes
from repro.obs.logger import (
    configure_logging,
    get_logger,
    teardown_logging,
)
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.obs.spans import span
from repro.obs.stats import summarize_stats_file
from repro.simulation import EngineConfig, SynchronousEngine
from repro.simulation.trace import TraceLevel


class TestGetLogger:
    def test_namespace_rooting(self):
        assert get_logger().name == "repro"
        assert get_logger("repro").name == "repro"
        assert get_logger("simulation.engine").name == "repro.simulation.engine"
        assert get_logger("repro.analysis").name == "repro.analysis"


class TestConfigureLogging:
    def test_noop_without_arguments(self):
        assert configure_logging() == []

    def test_console_handler_level(self, capsys):
        handlers = configure_logging("warning")
        try:
            get_logger("test").warning("visible", extra={"key": 7})
            get_logger("test").info("invisible")
        finally:
            teardown_logging(handlers)
        err = capsys.readouterr().err
        assert "visible" in err
        assert "key=7" in err
        assert "invisible" not in err

    def test_json_handler_writes_logs_and_spans(self, tmp_path):
        path = tmp_path / "events.jsonl"
        handlers = configure_logging(json_path=str(path))
        try:
            get_logger("test").info("hello", extra={"n": 3})
            with span("unit.of.work"):
                pass
        finally:
            teardown_logging(handlers)
        events = [json.loads(line) for line in path.read_text().splitlines()]
        kinds = {event["kind"] for event in events}
        assert kinds == {"log", "span"}
        log_event = next(e for e in events if e["kind"] == "log")
        assert log_event["msg"] == "hello"
        assert log_event["n"] == 3
        assert log_event["logger"] == "repro.test"

    def test_teardown_removes_handlers(self, tmp_path):
        path = tmp_path / "events.jsonl"
        handlers = configure_logging(json_path=str(path))
        teardown_logging(handlers)
        get_logger("test").error("after teardown")
        with span("after.teardown"):
            pass
        lines = path.read_text().splitlines()
        assert not [line for line in lines if "after" in line]


def _run_star(trace_level: TraceLevel, n: int = 4):
    processes, leader = make_star_processes(n)
    engine = SynchronousEngine(
        processes,
        lambda r: nx.star_graph(n - 1),
        leader=leader,
        config=EngineConfig(trace_level=trace_level),
    )
    return engine.run()


class TestEngineRoundEvents:
    @pytest.mark.parametrize(
        "trace_level", [TraceLevel.NONE, TraceLevel.TOPOLOGY, TraceLevel.FULL]
    )
    def test_round_events_at_every_trace_level(self, caplog, trace_level):
        """Debug round events fire even when the trace records nothing."""
        with caplog.at_level(logging.DEBUG, logger="repro"):
            result = _run_star(trace_level)
        rounds = [
            record
            for record in caplog.records
            if record.message == "round executed"
        ]
        assert len(rounds) == result.rounds
        for record in rounds:
            assert record.name == "repro.simulation.engine"
            assert record.edges == 3
            assert record.sent >= 1
            assert record.delivered >= 1
        start = [r for r in caplog.records if r.message == "run started"]
        assert start and start[0].trace_level == int(trace_level)
        assert any(r.message == "run finished" for r in caplog.records)

    def test_counters_match_run(self):
        with use_registry(MetricsRegistry()) as registry:
            result = _run_star(TraceLevel.TOPOLOGY)
        counters = registry.snapshot()["counters"]
        assert counters["engine.runs"] == 1
        assert counters["engine.rounds"] == result.rounds
        assert counters["engine.graphs"] == result.rounds
        assert counters["engine.messages_sent"] == sum(
            record.messages_sent for record in result.trace
        )
        assert counters["engine.messages_delivered"] == sum(
            record.messages_delivered for record in result.trace
        )

    def test_silent_at_default_level(self, caplog):
        with caplog.at_level(logging.INFO, logger="repro"):
            _run_star(TraceLevel.NONE)
        assert not [
            r for r in caplog.records if r.message == "round executed"
        ]


class TestStatsSummaries:
    def test_metrics_snapshot_file(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("engine.rounds", 12)
        registry.gauge("sparse.nnz", 972)
        registry.observe("span.sparse.rank.s", 0.25)
        path = tmp_path / "metrics.json"
        path.write_text(json.dumps(registry.snapshot()))
        summary = summarize_stats_file(path)
        assert "engine.rounds" in summary
        assert "sparse.nnz" in summary
        assert "span.sparse.rank.s" in summary

    def test_event_log_file(self, tmp_path):
        path = tmp_path / "events.jsonl"
        lines = [
            json.dumps({"kind": "span", "name": "experiment.run", "duration_s": 1.5}),
            json.dumps({"kind": "span", "name": "experiment.run", "duration_s": 0.5}),
            json.dumps({"kind": "log", "level": "DEBUG", "msg": "x"}),
            "{corrupt",
        ]
        path.write_text("\n".join(lines) + "\n")
        summary = summarize_stats_file(path)
        assert "experiment.run" in summary
        assert "DEBUG" in summary
        assert "1 unparseable" in summary

    def test_empty_snapshot(self, tmp_path):
        path = tmp_path / "metrics.json"
        path.write_text(json.dumps(MetricsRegistry().snapshot()))
        assert "empty" in summarize_stats_file(path)
