"""Tests for trace identity, propagation, and JSONL stitching."""

from __future__ import annotations

import io
import json

import pytest

from repro.analysis.registry import ExperimentRequest
from repro.analysis.runtime import (
    FaultPlan,
    Journal,
    ResultCache,
    RetryPolicy,
    run_sweep,
)
from repro.obs.spans import (
    JsonlSink,
    add_sink,
    adopt_worker_context,
    current_trace_id,
    propagation_context,
    remove_sink,
    span,
)
from repro.obs.trace import (
    adopt_context,
    clear_context,
    expand_paths,
    folded_stacks,
    new_id,
    read_events,
    render_trace,
    stitch,
)


@pytest.fixture
def sink_buffer():
    buffer = io.StringIO()
    sink = add_sink(JsonlSink(buffer))
    try:
        yield buffer
    finally:
        remove_sink(sink)


def _events(buffer: io.StringIO) -> list[dict]:
    return [json.loads(line) for line in buffer.getvalue().splitlines()]


class TestIdentity:
    def test_ids_are_fresh_hex(self):
        ids = {new_id() for _ in range(100)}
        assert len(ids) == 100
        assert all(len(i) == 16 and int(i, 16) >= 0 for i in ids)

    def test_root_span_starts_a_trace(self, sink_buffer):
        with span("root"):
            with span("child"):
                pass
        child, root = _events(sink_buffer)
        assert root["trace_id"] == child["trace_id"]
        assert child["parent_id"] == root["span_id"]
        assert "parent_id" not in root

    def test_sibling_roots_get_distinct_traces(self, sink_buffer):
        with span("first"):
            pass
        with span("second"):
            pass
        first, second = _events(sink_buffer)
        assert first["trace_id"] != second["trace_id"]

    def test_ambient_context_adoption(self, sink_buffer):
        try:
            adopt_context("cafe" * 4, "beef" * 4)
            assert current_trace_id() == "cafe" * 4
            with span("worker.root"):
                pass
        finally:
            clear_context()
        event = _events(sink_buffer)[0]
        assert event["trace_id"] == "cafe" * 4
        assert event["parent_id"] == "beef" * 4

    def test_adopt_worker_context_none_clears(self):
        adopt_context("dead" * 4, None)
        adopt_worker_context(None)
        assert current_trace_id() is None

    def test_propagation_context_prefers_open_span(self):
        assert propagation_context() is None
        with span("outer") as outer:
            trace_id, span_id = propagation_context()
            assert trace_id == outer.trace_id
            assert span_id == outer.span_id

    def test_sink_stamps_pid_and_monotonic_seq(self, sink_buffer):
        for _ in range(3):
            with span("stamped"):
                pass
        events = _events(sink_buffer)
        assert all(event["pid"] > 0 for event in events)
        assert [event["seq"] for event in events] == [0, 1, 2]


class TestStitch:
    def _span_event(self, name, trace, sid, parent=None, ts=0.0, **extra):
        event = {
            "kind": "span",
            "name": name,
            "trace_id": trace,
            "span_id": sid,
            "ts": ts,
            "duration_s": 1.0,
            **extra,
        }
        if parent is not None:
            event["parent_id"] = parent
        return event

    def test_tree_reconstruction(self):
        events = [
            self._span_event("root", "t1", "a", ts=0.0, duration_s=3.0),
            self._span_event("late", "t1", "c", parent="a", ts=2.0),
            self._span_event("early", "t1", "b", parent="a", ts=1.0),
        ]
        (trace,) = stitch(events)
        assert [r.name for r in trace.roots] == ["root"]
        # Children ordered by start time, not input order.
        assert [c.name for c in trace.roots[0].children] == ["early", "late"]
        assert trace.orphan_spans == []

    def test_orphans_detected(self):
        events = [
            self._span_event("lost", "t1", "x", parent="never-closed"),
        ]
        (trace,) = stitch(events)
        assert trace.roots == []
        assert [n.name for n in trace.orphan_spans] == ["lost"]
        assert "orphan" in render_trace(trace)

    def test_untraced_events_group_last(self):
        events = [
            {"kind": "log", "msg": "legacy"},
            self._span_event("root", "t1", "a"),
        ]
        traces = stitch(events)
        assert [t.trace_id for t in traces] == ["t1", None]

    def test_non_span_events_kept_with_their_trace(self):
        events = [
            self._span_event("root", "t1", "a"),
            {"kind": "telemetry", "trace_id": "t1", "round": 0},
        ]
        (trace,) = stitch(events)
        assert len(trace.events) == 1
        assert trace.events[0]["round"] == 0

    def test_folded_stacks_self_time(self):
        events = [
            self._span_event("root", "t1", "a", ts=0.0, duration_s=3.0),
            self._span_event(
                "child", "t1", "b", parent="a", ts=0.5, duration_s=1.0
            ),
        ]
        (trace,) = stitch(events)
        lines = folded_stacks(trace)
        assert "root 2000000" in lines  # 3s - 1s child = 2s self
        assert "root;child 1000000" in lines

    def test_read_events_orders_and_counts_bad(self, tmp_path):
        a = tmp_path / "a.jsonl"
        b = tmp_path / "b.jsonl"
        a.write_text(
            json.dumps({"ts": 2.0, "pid": 1, "seq": 0, "n": "late"})
            + "\n{torn"
        )
        b.write_text(json.dumps({"ts": 1.0, "pid": 2, "seq": 5, "n": "early"}))
        events, bad = read_events([str(a), str(b)])
        assert [e["n"] for e in events] == ["early", "late"]
        assert bad == 1

    def test_expand_paths_globs(self, tmp_path):
        (tmp_path / "w1.jsonl").write_text("")
        (tmp_path / "w2.jsonl").write_text("")
        paths = expand_paths([str(tmp_path / "w*.jsonl")])
        assert [p.name for p in paths] == ["w1.jsonl", "w2.jsonl"]
        with pytest.raises(FileNotFoundError):
            expand_paths([str(tmp_path / "missing-*.jsonl")])


class TestSweepStitching:
    """Acceptance: a crash/retry/resume sweep stitches to one tree."""

    REQUESTS = [
        ExperimentRequest("tab-star-pd1", params={"sizes": sizes})
        for sizes in ((2,), (2, 5), (2, 5, 9))
    ]

    def _run(self, path, **kwargs):
        sink = add_sink(JsonlSink(str(path)))
        try:
            return run_sweep(self.REQUESTS, **kwargs)
        finally:
            remove_sink(sink)
            sink.close()

    def test_crash_retry_sweep_single_root_no_orphans(self, tmp_path):
        events_path = tmp_path / "events.jsonl"
        outcome = self._run(
            events_path,
            jobs=2,
            policy=RetryPolicy(retries=2, backoff_s=0.001, jitter=0.0),
            faults=FaultPlan(kind="kill", at=0),
        )
        assert outcome.passed
        events, bad = read_events([str(events_path)])
        assert bad == 0
        traces = stitch(events)
        assert len(traces) == 1, [t.trace_id for t in traces]
        trace = traces[0]
        assert trace.trace_id is not None
        # Exactly one root: the sweep span; every worker attempt span
        # parents under it (the killed attempt never closed its span,
        # so the retry contributes the surviving one).
        assert len(trace.roots) == 1
        root = trace.roots[0]
        assert root.name == "sweep.run"
        assert trace.orphan_spans == []
        attempts = [c for c in root.children if c.name == "experiment.run"]
        assert len(attempts) == len(self.REQUESTS)
        # Workers really are other processes, and every event is
        # stamped with trace identity and origin.
        assert len(trace.pids) >= 2
        for event in events:
            assert event["trace_id"] == trace.trace_id
            assert event["pid"] > 0
            assert event["seq"] >= 0

    def test_resumed_sweep_joins_new_trace(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        journal = Journal(tmp_path / "cache" / "journal.jsonl")
        first = tmp_path / "first.jsonl"
        with pytest.raises(Exception):
            self._run(
                first,
                jobs=2,
                cache=cache,
                journal=journal,
                policy=RetryPolicy(retries=0, backoff_s=0.001, jitter=0.0),
                faults=FaultPlan(kind="kill", at=2),
            )
        second = tmp_path / "second.jsonl"
        outcome = self._run(
            second,
            jobs=2,
            cache=cache,
            journal=journal,
            resume=True,
            policy=RetryPolicy(retries=0, backoff_s=0.001, jitter=0.0),
        )
        assert outcome.passed
        assert outcome.skipped >= 1
        # Each sweep is its own trace; both stitch cleanly on their own.
        for path in (first, second):
            events, _ = read_events([str(path)])
            traces = [t for t in stitch(events) if t.trace_id is not None]
            assert len(traces) == 1
            assert len(traces[0].roots) <= 1  # killed sweep may lose its root
            assert all(
                e.get("trace_id") == traces[0].trace_id for e in events
            )
        # The combined file pair still yields exactly two traces.
        combined = stitch(read_events([str(first), str(second)])[0])
        assert len([t for t in combined if t.trace_id is not None]) == 2
