"""Tests for sampled round telemetry (repro.obs.telemetry)."""

from __future__ import annotations

import io
import json

import pytest

from repro.core.counting.flooding import flood_time_via_protocol
from repro.networks.generators import star_network
from repro.networks.generators.random_dynamic import RandomConnectedAdversary
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.obs.spans import JsonlSink, add_sink, remove_sink
from repro.obs.telemetry import (
    Telemetry,
    active,
    disable,
    enable,
    parse_every,
    telemetry_enabled,
)

#: Fields both engines must report identically for the same run.
TRAJECTORY_FIELDS = [
    "round",
    "informed",
    "terminated",
    "sent",
    "delivered",
    "edges",
    "nodes",
]


@pytest.fixture
def sink_buffer():
    buffer = io.StringIO()
    sink = add_sink(JsonlSink(buffer))
    try:
        yield buffer
    finally:
        remove_sink(sink)


def _telemetry_events(buffer: io.StringIO) -> list[dict]:
    return [
        event
        for event in map(json.loads, buffer.getvalue().splitlines())
        if event.get("kind") == "telemetry"
    ]


class TestConfig:
    def test_disabled_by_default(self):
        assert active() is None

    def test_enable_disable_roundtrip(self):
        config = enable(every=3)
        try:
            assert active() is config
            assert config.every == 3
        finally:
            disable()
        assert active() is None

    def test_context_manager_restores_previous(self):
        with telemetry_enabled(every=2) as outer:
            assert active() is outer
            with telemetry_enabled(every=5):
                assert active().every == 5
            assert active() is outer
        assert active() is None

    def test_sampling_period(self):
        config = Telemetry(every=3)
        assert [r for r in range(10) if config.wants(r)] == [0, 3, 6, 9]
        assert all(Telemetry(every=1).wants(r) for r in range(5))

    def test_invalid_period_rejected(self):
        with pytest.raises(ValueError):
            Telemetry(every=0)

    def test_parse_every(self):
        assert parse_every(None) == 1
        assert parse_every("4") == 4
        assert parse_every("every=7") == 7
        with pytest.raises(ValueError):
            parse_every("every=zero")
        with pytest.raises(ValueError):
            parse_every("0")


class TestEmission:
    def test_off_means_no_events(self, sink_buffer):
        flood_time_via_protocol(star_network(6), 0, backend="object")
        flood_time_via_protocol(star_network(6), 0, backend="fast")
        assert _telemetry_events(sink_buffer) == []

    def test_records_counted_and_stamped(self, sink_buffer):
        with use_registry(MetricsRegistry()) as registry:
            with telemetry_enabled():
                flood_time_via_protocol(star_network(6), 0, backend="object")
        events = _telemetry_events(sink_buffer)
        assert events
        snapshot = registry.snapshot()
        assert snapshot["counters"]["telemetry.records"] == len(events)
        for event in events:
            assert {"ts", "pid", "seq"} <= event.keys()
            assert event["engine"] == "object"

    def test_sampling_skips_rounds(self, sink_buffer):
        # A 2-node path floods in 1 round; use the engine's round budget
        # via a leaderless star so multiple rounds execute.
        network = star_network(5)
        with telemetry_enabled(every=2):
            flood_time_via_protocol(network, 1, backend="object")
        rounds = [e["round"] for e in _telemetry_events(sink_buffer)]
        assert rounds
        assert all(r % 2 == 0 for r in rounds)


class TestDifferential:
    """Acceptance: both backends emit identical round trajectories."""

    @pytest.mark.parametrize("source", [0, 3])
    def test_star_trajectories_identical(self, sink_buffer, source):
        with telemetry_enabled(every=1):
            rounds_object = flood_time_via_protocol(
                star_network(9), source, backend="object"
            )
            rounds_fast = flood_time_via_protocol(
                star_network(9), source, backend="fast"
            )
        assert rounds_object == rounds_fast
        events = _telemetry_events(sink_buffer)
        trajectory = {
            engine: [
                [event[field] for field in TRAJECTORY_FIELDS]
                for event in events
                if event["engine"] == engine
            ]
            for engine in ("object", "fast")
        }
        assert trajectory["object"]  # something was recorded
        assert trajectory["object"] == trajectory["fast"]

    def test_dynamic_network_trajectories_identical(self, sink_buffer):
        def network():
            return RandomConnectedAdversary(
                12, seed=7, extra_edge_p=0.2
            ).as_dynamic_graph()

        with telemetry_enabled(every=1):
            assert flood_time_via_protocol(
                network(), 0, backend="object"
            ) == flood_time_via_protocol(network(), 0, backend="fast")
        events = _telemetry_events(sink_buffer)
        by_engine = {
            engine: [
                [event[field] for field in TRAJECTORY_FIELDS]
                for event in events
                if event["engine"] == engine
            ]
            for engine in ("object", "fast")
        }
        assert len(by_engine["object"]) >= 2  # multi-round run
        assert by_engine["object"] == by_engine["fast"]

    def test_informed_grows_monotonically(self, sink_buffer):
        with telemetry_enabled(every=1):
            flood_time_via_protocol(
                RandomConnectedAdversary(10, seed=3).as_dynamic_graph(),
                0,
                backend="fast",
            )
        informed = [e["informed"] for e in _telemetry_events(sink_buffer)]
        assert informed == sorted(informed)
        assert informed[-1] == 10
