"""Tests for span tracing and the JSONL event sink."""

from __future__ import annotations

import io
import json

import pytest

from repro.obs.metrics import MetricsRegistry, use_registry
from repro.obs.spans import (
    JsonlSink,
    add_sink,
    current_span,
    peak_rss_mib,
    remove_sink,
    span,
)


@pytest.fixture
def sink_buffer():
    """A registered in-memory sink; yields its buffer, always unregisters."""
    buffer = io.StringIO()
    sink = add_sink(JsonlSink(buffer))
    try:
        yield buffer
    finally:
        remove_sink(sink)


def _events(buffer: io.StringIO) -> list[dict]:
    return [json.loads(line) for line in buffer.getvalue().splitlines()]


class TestSpanNesting:
    def test_nesting_depth_and_parent(self, sink_buffer):
        with span("outer"):
            assert current_span().name == "outer"
            with span("middle"):
                with span("leaf"):
                    assert current_span().depth == 2
        assert current_span() is None
        events = _events(sink_buffer)
        # Innermost closes first.
        assert [e["name"] for e in events] == ["leaf", "middle", "outer"]
        assert [e["depth"] for e in events] == [2, 1, 0]
        assert events[0]["parent"] == "middle"
        assert events[1]["parent"] == "outer"
        assert "parent" not in events[2]

    def test_timing_monotone_over_nesting(self):
        with span("outer") as outer:
            with span("inner") as inner:
                sum(range(10_000))
        assert 0 <= inner.duration_s <= outer.duration_s

    def test_sequential_spans_do_not_nest(self, sink_buffer):
        with span("first"):
            pass
        with span("second"):
            pass
        events = _events(sink_buffer)
        assert all(e["depth"] == 0 for e in events)
        assert all("parent" not in e for e in events)

    def test_stack_unwinds_on_exception(self, sink_buffer):
        with pytest.raises(RuntimeError):
            with span("failing"):
                raise RuntimeError("boom")
        assert current_span() is None
        events = _events(sink_buffer)
        assert events[0]["name"] == "failing"
        assert events[0]["duration_s"] >= 0


class TestSpanData:
    def test_attrs_and_rss(self, sink_buffer):
        with span("attributed", experiment="tab-x", r=3) as record:
            pass
        event = _events(sink_buffer)[0]
        assert event["kind"] == "span"
        assert event["attrs"] == {"experiment": "tab-x", "r": 3}
        if peak_rss_mib() is not None:  # POSIX
            assert record.rss_mib > 0
            assert event["rss_mib"] > 0

    def test_duration_observed_into_current_registry(self):
        with use_registry(MetricsRegistry()) as registry:
            with span("timed.block"):
                pass
            with span("timed.block"):
                pass
        hist = registry.snapshot()["histograms"]["span.timed.block.s"]
        assert hist["count"] == 2
        assert hist["total"] >= hist["max"] >= hist["min"] >= 0


class TestJsonlSink:
    def test_file_roundtrip(self, tmp_path):
        """Acceptance: spans written to disk parse back line by line."""
        path = tmp_path / "events.jsonl"
        sink = add_sink(JsonlSink(str(path)))
        try:
            with span("a", n=1):
                with span("b"):
                    pass
        finally:
            remove_sink(sink)
            sink.close()
        events = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        assert [e["name"] for e in events] == ["b", "a"]
        assert all(e["kind"] == "span" for e in events)
        assert events[1]["attrs"] == {"n": 1}

    def test_appends_across_sinks(self, tmp_path):
        path = tmp_path / "events.jsonl"
        for _ in range(2):
            sink = add_sink(JsonlSink(str(path)))
            try:
                with span("appended"):
                    pass
            finally:
                remove_sink(sink)
                sink.close()
        assert len(path.read_text().splitlines()) == 2

    def test_non_json_attrs_fall_back_to_repr(self, sink_buffer):
        with span("weird", payload={1, 2}):
            pass
        event = _events(sink_buffer)[0]
        assert "1, 2" in event["attrs"]["payload"]

    def test_remove_sink_is_idempotent(self):
        sink = JsonlSink(io.StringIO())
        remove_sink(sink)  # never added: no-op, no raise
